"""One runner per reproduced table/figure (the paper's Section 5).

Each ``run_*`` function performs the full sweep behind one figure or
table and returns a small result object that knows how to render itself
as a paper-style text table.  The benchmarks in ``benchmarks/`` and the
example scripts in ``examples/`` are thin wrappers around these runners,
so the exact same code path regenerates every number in EXPERIMENTS.md.

Runtime is controlled by two knobs shared by all runners: the per-core
trace length (``accesses``) and the capacity scale.  Defaults reproduce
the shapes discussed in EXPERIMENTS.md in a few minutes total; tests use
much smaller values.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import format_table, normalize_to, percent_delta
from repro.common.config import default_system
from repro.common.stats import geometric_mean
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import SimulationResult, Simulator
from repro.designs.registry import DESIGN_NAMES
from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import MIX_ORDER, mix_traces
from repro.workloads.parsec import PARSEC_ORDER, parsec_thread_traces
from repro.workloads.spec import SPEC_ORDER, spec_profile

#: Default per-core trace length for full experiment runs.
DEFAULT_ACCESSES = 150_000
#: Multi-programmed runs use slightly shorter per-core traces: four cores
#: already provide 4x the references.
DEFAULT_MIX_ACCESSES = 100_000


def _single_program_bindings(
    program: str, accesses: int, capacity_scale: int
) -> List[BoundTrace]:
    generator = TraceGenerator(
        spec_profile(program), capacity_scale=capacity_scale
    )
    return [BoundTrace(core_id=0, process_id=0,
                       trace=generator.generate(accesses))]


def _mix_bindings(
    mix: str, accesses: int, capacity_scale: int
) -> List[BoundTrace]:
    traces = mix_traces(mix, accesses_per_program=accesses,
                        capacity_scale=capacity_scale)
    return [
        BoundTrace(core_id=i, process_id=i, trace=trace)
        for i, trace in enumerate(traces)
    ]


def _parsec_bindings(
    program: str, accesses: int, capacity_scale: int, num_threads: int = 4
) -> List[BoundTrace]:
    traces = parsec_thread_traces(
        program, num_threads=num_threads, accesses_per_thread=accesses,
        capacity_scale=capacity_scale,
    )
    # One shared address space: every thread binds to process 0.
    return [
        BoundTrace(core_id=i, process_id=0, trace=trace)
        for i, trace in enumerate(traces)
    ]


# ----------------------------------------------------------------------
# Figures 7 and 8: single-programmed SPEC
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SingleProgramResult:
    """Per-(program, design) simulation outcomes for Figures 7 and 8."""

    programs: Tuple[str, ...]
    designs: Tuple[str, ...]
    results: Dict[Tuple[str, str], SimulationResult]

    def normalized_ipc(self, program: str) -> Dict[str, float]:
        values = {
            d: self.results[(program, d)].ipc_sum for d in self.designs
        }
        return normalize_to(values, "no-l3")

    def normalized_edp(self, program: str) -> Dict[str, float]:
        values = {d: self.results[(program, d)].edp for d in self.designs}
        return normalize_to(values, "no-l3")

    def l3_latency(self, program: str, design: str) -> float:
        return self.results[(program, design)].mean_l3_latency_cycles

    def geomean_ipc(self, design: str) -> float:
        return geometric_mean(
            self.normalized_ipc(p)[design] for p in self.programs
        )

    def geomean_edp(self, design: str) -> float:
        return geometric_mean(
            self.normalized_edp(p)[design] for p in self.programs
        )

    def ipc_table(self) -> str:
        rows = [
            [p] + [self.normalized_ipc(p)[d] for d in self.designs]
            for p in self.programs
        ]
        rows.append(
            ["geomean"] + [self.geomean_ipc(d) for d in self.designs]
        )
        return format_table(
            "Figure 7a: IPC normalised to No-L3 (single-programmed SPEC)",
            ["program"] + list(self.designs),
            rows,
        )

    def edp_table(self) -> str:
        rows = [
            [p] + [self.normalized_edp(p)[d] for d in self.designs]
            for p in self.programs
        ]
        rows.append(
            ["geomean"] + [self.geomean_edp(d) for d in self.designs]
        )
        return format_table(
            "Figure 7b: EDP normalised to No-L3 (lower is better)",
            ["program"] + list(self.designs),
            rows,
        )

    def l3_latency_table(self) -> str:
        rows = []
        for p in self.programs:
            sram = self.l3_latency(p, "sram")
            tagless = self.l3_latency(p, "tagless")
            rows.append([p, sram, tagless, percent_delta(tagless, sram)])
        sram_gm = geometric_mean(
            self.l3_latency(p, "sram") for p in self.programs
        )
        tag_gm = geometric_mean(
            self.l3_latency(p, "tagless") for p in self.programs
        )
        rows.append(["geomean", sram_gm, tag_gm,
                     percent_delta(tag_gm, sram_gm)])
        return format_table(
            "Figure 8: average L3 access latency in cycles "
            "(lower is better)",
            ["program", "sram-tag", "tagless", "delta %"],
            rows,
        )


def run_single_programmed(
    programs: Sequence[str] = SPEC_ORDER,
    designs: Sequence[str] = DESIGN_NAMES,
    accesses: int = DEFAULT_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
) -> SingleProgramResult:
    """Run the Figure 7 / Figure 8 sweep (11 programs x 5 designs)."""
    config = default_system(
        cache_megabytes=cache_megabytes,
        num_cores=1,
        capacity_scale=capacity_scale,
    )
    simulator = Simulator(config)
    results: Dict[Tuple[str, str], SimulationResult] = {}
    for program in programs:
        bindings = _single_program_bindings(program, accesses, capacity_scale)
        for design in designs:
            results[(program, design)] = simulator.run(design, bindings)
    return SingleProgramResult(
        programs=tuple(programs), designs=tuple(designs), results=results
    )


# ----------------------------------------------------------------------
# Figure 9: multi-programmed mixes
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MixResult:
    """Per-(mix, design) outcomes for Figure 9 (and 10/11 variants)."""

    mixes: Tuple[str, ...]
    designs: Tuple[str, ...]
    results: Dict[Tuple[str, str], SimulationResult]
    baseline: str = "no-l3"

    def normalized_ipc(self, mix: str) -> Dict[str, float]:
        values = {d: self.results[(mix, d)].ipc_sum for d in self.designs}
        return normalize_to(values, self.baseline)

    def normalized_edp(self, mix: str) -> Dict[str, float]:
        values = {d: self.results[(mix, d)].edp for d in self.designs}
        return normalize_to(values, self.baseline)

    def geomean_ipc(self, design: str) -> float:
        return geometric_mean(
            self.normalized_ipc(m)[design] for m in self.mixes
        )

    def geomean_edp(self, design: str) -> float:
        return geometric_mean(
            self.normalized_edp(m)[design] for m in self.mixes
        )

    def ipc_table(self, title: str = "Figure 9a: IPC normalised to No-L3 "
                  "(multi-programmed mixes)") -> str:
        rows = [
            [m] + [self.normalized_ipc(m)[d] for d in self.designs]
            for m in self.mixes
        ]
        rows.append(["geomean"] + [self.geomean_ipc(d) for d in self.designs])
        return format_table(title, ["mix"] + list(self.designs), rows)

    def edp_table(self, title: str = "Figure 9b: EDP normalised to No-L3 "
                  "(lower is better)") -> str:
        rows = [
            [m] + [self.normalized_edp(m)[d] for d in self.designs]
            for m in self.mixes
        ]
        rows.append(["geomean"] + [self.geomean_edp(d) for d in self.designs])
        return format_table(title, ["mix"] + list(self.designs), rows)


def run_multi_programmed(
    mixes: Sequence[str] = MIX_ORDER,
    designs: Sequence[str] = DESIGN_NAMES,
    accesses: int = DEFAULT_MIX_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
    replacement: str = "fifo",
) -> MixResult:
    """Run the Figure 9 sweep (8 mixes x designs, 4 cores)."""
    config = default_system(
        cache_megabytes=cache_megabytes,
        num_cores=4,
        replacement=replacement,
        capacity_scale=capacity_scale,
    )
    simulator = Simulator(config)
    results: Dict[Tuple[str, str], SimulationResult] = {}
    for mix in mixes:
        bindings = _mix_bindings(mix, accesses, capacity_scale)
        for design in designs:
            results[(mix, design)] = simulator.run(design, bindings)
    return MixResult(
        mixes=tuple(mixes), designs=tuple(designs), results=results
    )


# ----------------------------------------------------------------------
# Figure 10: DRAM cache size sensitivity (normalised to BI)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheSizeResult:
    """IPC vs cache size for SRAM-tag and tagless, normalised to BI."""

    sizes_mb: Tuple[int, ...]
    mixes: Tuple[str, ...]
    #: (size_mb, mix, design) -> SimulationResult; design includes "bi".
    results: Dict[Tuple[int, str, str], SimulationResult]

    def normalized_ipc(self, size_mb: int, mix: str) -> Dict[str, float]:
        values = {
            d: self.results[(size_mb, mix, d)].ipc_sum
            for d in ("bi", "sram", "tagless")
        }
        return normalize_to(values, "bi")

    def geomean_ipc(self, size_mb: int, design: str) -> float:
        return geometric_mean(
            self.normalized_ipc(size_mb, m)[design] for m in self.mixes
        )

    def table(self) -> str:
        rows = []
        for size in self.sizes_mb:
            rows.append(
                [f"{size}MB",
                 self.geomean_ipc(size, "sram"),
                 self.geomean_ipc(size, "tagless")]
            )
        return format_table(
            "Figure 10: IPC vs DRAM cache size, normalised to "
            "bank-interleaving (geomean over mixes)",
            ["cache size", "sram-tag", "tagless"],
            rows,
        )


def run_cache_size_sweep(
    sizes_mb: Sequence[int] = (256, 512, 1024),
    mixes: Sequence[str] = MIX_ORDER,
    accesses: int = DEFAULT_MIX_ACCESSES,
    capacity_scale: int = 64,
) -> CacheSizeResult:
    """Run the Figure 10 sweep: cache size sensitivity on the mixes."""
    results: Dict[Tuple[int, str, str], SimulationResult] = {}
    for size in sizes_mb:
        config = default_system(
            cache_megabytes=size, num_cores=4, capacity_scale=capacity_scale
        )
        simulator = Simulator(config)
        for mix in mixes:
            bindings = _mix_bindings(mix, accesses, capacity_scale)
            for design in ("bi", "sram", "tagless"):
                results[(size, mix, design)] = simulator.run(design, bindings)
    return CacheSizeResult(
        sizes_mb=tuple(sizes_mb), mixes=tuple(mixes), results=results
    )


# ----------------------------------------------------------------------
# Figure 11: replacement-policy sensitivity (FIFO vs LRU)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ReplacementResult:
    """Tagless IPC under FIFO vs LRU victim selection, per mix."""

    mixes: Tuple[str, ...]
    #: (mix, policy) -> SimulationResult
    results: Dict[Tuple[str, str], SimulationResult]

    def lru_over_fifo(self, mix: str) -> float:
        fifo = self.results[(mix, "fifo")].ipc_sum
        lru = self.results[(mix, "lru")].ipc_sum
        return lru / fifo

    def mean_gain_percent(self) -> float:
        ratio = geometric_mean(self.lru_over_fifo(m) for m in self.mixes)
        return (ratio - 1.0) * 100.0

    def table(self) -> str:
        rows = [
            [m,
             self.results[(m, "fifo")].ipc_sum,
             self.results[(m, "lru")].ipc_sum,
             (self.lru_over_fifo(m) - 1.0) * 100.0]
            for m in self.mixes
        ]
        rows.append(["geomean", "", "", self.mean_gain_percent()])
        return format_table(
            "Figure 11: tagless-cache IPC under FIFO vs LRU replacement",
            ["mix", "fifo IPC", "lru IPC", "LRU gain %"],
            rows,
            float_format="{:.3f}",
        )


def run_replacement_study(
    mixes: Sequence[str] = MIX_ORDER,
    accesses: int = DEFAULT_MIX_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
) -> ReplacementResult:
    """Run the Figure 11 ablation: FIFO vs LRU for the tagless cache."""
    results: Dict[Tuple[str, str], SimulationResult] = {}
    for policy in ("fifo", "lru"):
        config = default_system(
            cache_megabytes=cache_megabytes,
            num_cores=4,
            replacement=policy,
            capacity_scale=capacity_scale,
        )
        simulator = Simulator(config)
        for mix in mixes:
            bindings = _mix_bindings(mix, accesses, capacity_scale)
            results[(mix, policy)] = simulator.run("tagless", bindings)
    return ReplacementResult(mixes=tuple(mixes), results=results)


# ----------------------------------------------------------------------
# Figure 12: multi-threaded PARSEC
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ParsecResult:
    """Per-(program, design) outcomes for the PARSEC figure."""

    programs: Tuple[str, ...]
    designs: Tuple[str, ...]
    results: Dict[Tuple[str, str], SimulationResult]

    def normalized_ipc(self, program: str) -> Dict[str, float]:
        values = {
            d: self.results[(program, d)].ipc_sum for d in self.designs
        }
        return normalize_to(values, "no-l3")

    def normalized_edp(self, program: str) -> Dict[str, float]:
        values = {d: self.results[(program, d)].edp for d in self.designs}
        return normalize_to(values, "no-l3")

    def ipc_table(self) -> str:
        rows = [
            [p] + [self.normalized_ipc(p)[d] for d in self.designs]
            for p in self.programs
        ]
        return format_table(
            "Figure 12a: IPC normalised to No-L3 (multi-threaded PARSEC)",
            ["program"] + list(self.designs),
            rows,
        )

    def edp_table(self) -> str:
        rows = [
            [p] + [self.normalized_edp(p)[d] for d in self.designs]
            for p in self.programs
        ]
        return format_table(
            "Figure 12b: EDP normalised to No-L3 (lower is better)",
            ["program"] + list(self.designs),
            rows,
        )


def run_parsec(
    programs: Sequence[str] = PARSEC_ORDER,
    designs: Sequence[str] = DESIGN_NAMES,
    accesses: int = DEFAULT_MIX_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
) -> ParsecResult:
    """Run the Figure 12 sweep: 4 PARSEC programs, 4 threads, shared pages."""
    config = default_system(
        cache_megabytes=cache_megabytes,
        num_cores=4,
        capacity_scale=capacity_scale,
    )
    simulator = Simulator(config)
    results: Dict[Tuple[str, str], SimulationResult] = {}
    for program in programs:
        bindings = _parsec_bindings(program, accesses, capacity_scale)
        for design in designs:
            results[(program, design)] = simulator.run(design, bindings)
    return ParsecResult(
        programs=tuple(programs), designs=tuple(designs), results=results
    )


# ----------------------------------------------------------------------
# Figure 13: non-cacheable pages on 459.GemsFDTD
# ----------------------------------------------------------------------
@dataclasses.dataclass
class NonCacheableResult:
    """Tagless IPC without vs with NC classification of low-reuse pages."""

    baseline: SimulationResult
    with_nc: SimulationResult
    nc_pages: int
    threshold: int

    def gain_percent(self) -> float:
        return percent_delta(self.with_nc.ipc_sum, self.baseline.ipc_sum)

    def table(self) -> str:
        rows = [
            ["tagless", self.baseline.ipc_sum, ""],
            ["tagless + NC", self.with_nc.ipc_sum,
             f"+{self.gain_percent():.1f}%"],
        ]
        return format_table(
            f"Figure 13: effect of non-cacheable pages on GemsFDTD "
            f"({self.nc_pages} pages below {self.threshold} accesses "
            "flagged NC)",
            ["configuration", "IPC", "gain"],
            rows,
        )


def run_noncacheable_study(
    program: str = "GemsFDTD",
    threshold: int = 32,
    accesses: int = DEFAULT_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
) -> NonCacheableResult:
    """Run the Section 5.4 case study.

    Pages with fewer than ``threshold`` accesses in the trace (the
    paper's offline-profiling criterion: fewer than half of a page's 64
    blocks touched) are flagged NC, so they bypass the DRAM cache and
    stop polluting it.
    """
    config = default_system(
        cache_megabytes=cache_megabytes,
        num_cores=1,
        capacity_scale=capacity_scale,
    )
    generator = TraceGenerator(
        spec_profile(program), capacity_scale=capacity_scale
    )
    trace = generator.generate(accesses)
    bindings = [BoundTrace(core_id=0, process_id=0, trace=trace)]
    simulator = Simulator(config)

    baseline = simulator.run("tagless", bindings)
    counts = trace.page_access_counts()
    nc_pages = [page for page, count in counts.items() if count < threshold]
    with_nc = simulator.run(
        "tagless", bindings, non_cacheable={0: nc_pages}
    )
    return NonCacheableResult(
        baseline=baseline,
        with_nc=with_nc,
        nc_pages=len(nc_pages),
        threshold=threshold,
    )
