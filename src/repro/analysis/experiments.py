"""One runner per reproduced table/figure (the paper's Section 5).

Each ``run_*`` function enumerates the :class:`~repro.harness.JobSpec`
points behind one figure or table, dispatches them through the
experiment harness (:mod:`repro.harness`) and returns a small result
object that knows how to render itself as a paper-style text table.
The benchmarks in ``benchmarks/`` and the example scripts in
``examples/`` are thin wrappers around these runners, so the exact same
code path regenerates every number in EXPERIMENTS.md.

Passing a :class:`~repro.harness.Harness` parallelises the sweep across
processes and/or replays points from the on-disk result cache; the
default (``harness=None``) is the serial, uncached reference path and
produces byte-identical tables either way, because every job is fully
determined by its spec.

Runtime is controlled by two knobs shared by all runners: the per-core
trace length (``accesses``) and the capacity scale.  Defaults reproduce
the shapes discussed in EXPERIMENTS.md in a few minutes total; tests use
much smaller values.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.analysis.report import format_table, normalize_to, percent_delta
from repro.common.machine import MachineSpec
from repro.common.stats import geometric_mean
from repro.cpu.simulator import SimulationResult
from repro.designs.registry import DESIGN_NAMES
from repro.harness.jobs import JobSpec
from repro.harness.runner import Harness
from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import MIX_ORDER
from repro.workloads.parsec import PARSEC_ORDER
from repro.workloads.spec import SPEC_ORDER, spec_profile

#: Default per-core trace length for full experiment runs.
DEFAULT_ACCESSES = 150_000
#: Multi-programmed runs use slightly shorter per-core traces: four cores
#: already provide 4x the references.
DEFAULT_MIX_ACCESSES = 100_000
#: Warmup split every runner uses unless overridden (see Simulator.run).
DEFAULT_WARMUP_FRACTION = 0.25


def _sweep(
    specs: Dict[Hashable, JobSpec], harness: Optional[Harness]
) -> Dict[Hashable, SimulationResult]:
    """Dispatch ``specs`` through ``harness`` (serial when ``None``).

    Returns results keyed like the input.  Raises
    :class:`~repro.harness.HarnessError` listing every failed point --
    the successful remainder is already cached, so a retry after a fix
    only recomputes the failures.
    """
    harness = harness or Harness()
    results = harness.run_strict(list(specs.values()))
    return dict(zip(specs.keys(), results))


# ----------------------------------------------------------------------
# Figures 7 and 8: single-programmed SPEC
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SingleProgramResult:
    """Per-(program, design) simulation outcomes for Figures 7 and 8."""

    programs: Tuple[str, ...]
    designs: Tuple[str, ...]
    results: Dict[Tuple[str, str], SimulationResult]

    def normalized_ipc(self, program: str) -> Dict[str, float]:
        values = {
            d: self.results[(program, d)].ipc_sum for d in self.designs
        }
        return normalize_to(values, "no-l3")

    def normalized_edp(self, program: str) -> Dict[str, float]:
        values = {d: self.results[(program, d)].edp for d in self.designs}
        return normalize_to(values, "no-l3")

    def l3_latency(self, program: str, design: str) -> float:
        return self.results[(program, design)].mean_l3_latency_cycles

    def geomean_ipc(self, design: str) -> float:
        return geometric_mean(
            self.normalized_ipc(p)[design] for p in self.programs
        )

    def geomean_edp(self, design: str) -> float:
        return geometric_mean(
            self.normalized_edp(p)[design] for p in self.programs
        )

    def ipc_table(self) -> str:
        rows = [
            [p] + [self.normalized_ipc(p)[d] for d in self.designs]
            for p in self.programs
        ]
        rows.append(
            ["geomean"] + [self.geomean_ipc(d) for d in self.designs]
        )
        return format_table(
            "Figure 7a: IPC normalised to No-L3 (single-programmed SPEC)",
            ["program"] + list(self.designs),
            rows,
        )

    def edp_table(self) -> str:
        rows = [
            [p] + [self.normalized_edp(p)[d] for d in self.designs]
            for p in self.programs
        ]
        rows.append(
            ["geomean"] + [self.geomean_edp(d) for d in self.designs]
        )
        return format_table(
            "Figure 7b: EDP normalised to No-L3 (lower is better)",
            ["program"] + list(self.designs),
            rows,
        )

    def l3_latency_table(self) -> str:
        rows = []
        for p in self.programs:
            sram = self.l3_latency(p, "sram")
            tagless = self.l3_latency(p, "tagless")
            rows.append([p, sram, tagless, percent_delta(tagless, sram)])
        sram_gm = geometric_mean(
            self.l3_latency(p, "sram") for p in self.programs
        )
        tag_gm = geometric_mean(
            self.l3_latency(p, "tagless") for p in self.programs
        )
        rows.append(["geomean", sram_gm, tag_gm,
                     percent_delta(tag_gm, sram_gm)])
        return format_table(
            "Figure 8: average L3 access latency in cycles "
            "(lower is better)",
            ["program", "sram-tag", "tagless", "delta %"],
            rows,
        )

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form of everything the tables print."""
        return {
            "programs": list(self.programs),
            "designs": list(self.designs),
            "normalized_ipc": {
                p: self.normalized_ipc(p) for p in self.programs
            },
            "normalized_edp": {
                p: self.normalized_edp(p) for p in self.programs
            },
            "geomean_ipc": {d: self.geomean_ipc(d) for d in self.designs},
            "geomean_edp": {d: self.geomean_edp(d) for d in self.designs},
            "l3_latency_cycles": {
                p: {d: self.l3_latency(p, d) for d in self.designs}
                for p in self.programs
            },
        }


def run_single_programmed(
    programs: Sequence[str] = SPEC_ORDER,
    designs: Sequence[str] = DESIGN_NAMES,
    accesses: int = DEFAULT_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    machine: Optional[MachineSpec] = None,
    harness: Optional[Harness] = None,
) -> SingleProgramResult:
    """Run the Figure 7 / Figure 8 sweep (11 programs x 5 designs)."""
    specs = {
        (program, design): JobSpec(
            design=design,
            workload=program,
            workload_kind="spec",
            accesses=accesses,
            cache_megabytes=cache_megabytes,
            num_cores=1,
            capacity_scale=capacity_scale,
            warmup_fraction=warmup_fraction,
            machine=machine,
        )
        for program in programs
        for design in designs
    }
    return SingleProgramResult(
        programs=tuple(programs),
        designs=tuple(designs),
        results=_sweep(specs, harness),
    )


# ----------------------------------------------------------------------
# Figure 9: multi-programmed mixes
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MixResult:
    """Per-(mix, design) outcomes for Figure 9 (and 10/11 variants)."""

    mixes: Tuple[str, ...]
    designs: Tuple[str, ...]
    results: Dict[Tuple[str, str], SimulationResult]
    baseline: str = "no-l3"

    def normalized_ipc(self, mix: str) -> Dict[str, float]:
        values = {d: self.results[(mix, d)].ipc_sum for d in self.designs}
        return normalize_to(values, self.baseline)

    def normalized_edp(self, mix: str) -> Dict[str, float]:
        values = {d: self.results[(mix, d)].edp for d in self.designs}
        return normalize_to(values, self.baseline)

    def geomean_ipc(self, design: str) -> float:
        return geometric_mean(
            self.normalized_ipc(m)[design] for m in self.mixes
        )

    def geomean_edp(self, design: str) -> float:
        return geometric_mean(
            self.normalized_edp(m)[design] for m in self.mixes
        )

    def ipc_table(self, title: str = "Figure 9a: IPC normalised to No-L3 "
                  "(multi-programmed mixes)") -> str:
        rows = [
            [m] + [self.normalized_ipc(m)[d] for d in self.designs]
            for m in self.mixes
        ]
        rows.append(["geomean"] + [self.geomean_ipc(d) for d in self.designs])
        return format_table(title, ["mix"] + list(self.designs), rows)

    def edp_table(self, title: str = "Figure 9b: EDP normalised to No-L3 "
                  "(lower is better)") -> str:
        rows = [
            [m] + [self.normalized_edp(m)[d] for d in self.designs]
            for m in self.mixes
        ]
        rows.append(["geomean"] + [self.geomean_edp(d) for d in self.designs])
        return format_table(title, ["mix"] + list(self.designs), rows)

    def to_dict(self) -> Dict[str, object]:
        return {
            "mixes": list(self.mixes),
            "designs": list(self.designs),
            "baseline": self.baseline,
            "normalized_ipc": {
                m: self.normalized_ipc(m) for m in self.mixes
            },
            "normalized_edp": {
                m: self.normalized_edp(m) for m in self.mixes
            },
            "geomean_ipc": {d: self.geomean_ipc(d) for d in self.designs},
            "geomean_edp": {d: self.geomean_edp(d) for d in self.designs},
        }


def run_multi_programmed(
    mixes: Sequence[str] = MIX_ORDER,
    designs: Sequence[str] = DESIGN_NAMES,
    accesses: int = DEFAULT_MIX_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
    replacement: str = "fifo",
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    machine: Optional[MachineSpec] = None,
    harness: Optional[Harness] = None,
) -> MixResult:
    """Run the Figure 9 sweep (8 mixes x designs, 4 cores)."""
    specs = {
        (mix, design): JobSpec(
            design=design,
            workload=mix,
            workload_kind="mix",
            accesses=accesses,
            cache_megabytes=cache_megabytes,
            num_cores=4,
            replacement=replacement,
            capacity_scale=capacity_scale,
            warmup_fraction=warmup_fraction,
            machine=machine,
        )
        for mix in mixes
        for design in designs
    }
    return MixResult(
        mixes=tuple(mixes),
        designs=tuple(designs),
        results=_sweep(specs, harness),
    )


# ----------------------------------------------------------------------
# Figure 10: DRAM cache size sensitivity (normalised to BI)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheSizeResult:
    """IPC vs cache size for SRAM-tag and tagless, normalised to BI."""

    sizes_mb: Tuple[int, ...]
    mixes: Tuple[str, ...]
    #: (size_mb, mix, design) -> SimulationResult; design includes "bi".
    results: Dict[Tuple[int, str, str], SimulationResult]

    def normalized_ipc(self, size_mb: int, mix: str) -> Dict[str, float]:
        values = {
            d: self.results[(size_mb, mix, d)].ipc_sum
            for d in ("bi", "sram", "tagless")
        }
        return normalize_to(values, "bi")

    def geomean_ipc(self, size_mb: int, design: str) -> float:
        return geometric_mean(
            self.normalized_ipc(size_mb, m)[design] for m in self.mixes
        )

    def table(self) -> str:
        rows = []
        for size in self.sizes_mb:
            rows.append(
                [f"{size}MB",
                 self.geomean_ipc(size, "sram"),
                 self.geomean_ipc(size, "tagless")]
            )
        return format_table(
            "Figure 10: IPC vs DRAM cache size, normalised to "
            "bank-interleaving (geomean over mixes)",
            ["cache size", "sram-tag", "tagless"],
            rows,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "sizes_mb": list(self.sizes_mb),
            "mixes": list(self.mixes),
            "normalized_ipc": {
                str(size): {
                    m: self.normalized_ipc(size, m) for m in self.mixes
                }
                for size in self.sizes_mb
            },
            "geomean_ipc": {
                str(size): {
                    d: self.geomean_ipc(size, d)
                    for d in ("sram", "tagless")
                }
                for size in self.sizes_mb
            },
        }


def run_cache_size_sweep(
    sizes_mb: Sequence[int] = (256, 512, 1024),
    mixes: Sequence[str] = MIX_ORDER,
    accesses: int = DEFAULT_MIX_ACCESSES,
    capacity_scale: int = 64,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    machine: Optional[MachineSpec] = None,
    harness: Optional[Harness] = None,
) -> CacheSizeResult:
    """Run the Figure 10 sweep: cache size sensitivity on the mixes."""
    specs = {
        (size, mix, design): JobSpec(
            design=design,
            workload=mix,
            workload_kind="mix",
            accesses=accesses,
            cache_megabytes=size,
            num_cores=4,
            capacity_scale=capacity_scale,
            warmup_fraction=warmup_fraction,
            machine=machine,
        )
        for size in sizes_mb
        for mix in mixes
        for design in ("bi", "sram", "tagless")
    }
    return CacheSizeResult(
        sizes_mb=tuple(sizes_mb),
        mixes=tuple(mixes),
        results=_sweep(specs, harness),
    )


# ----------------------------------------------------------------------
# Figure 11: replacement-policy sensitivity (FIFO vs LRU)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ReplacementResult:
    """Tagless IPC under FIFO vs LRU victim selection, per mix."""

    mixes: Tuple[str, ...]
    #: (mix, policy) -> SimulationResult
    results: Dict[Tuple[str, str], SimulationResult]

    def lru_over_fifo(self, mix: str) -> float:
        fifo = self.results[(mix, "fifo")].ipc_sum
        lru = self.results[(mix, "lru")].ipc_sum
        return lru / fifo

    def mean_gain_percent(self) -> float:
        ratio = geometric_mean(self.lru_over_fifo(m) for m in self.mixes)
        return (ratio - 1.0) * 100.0

    def table(self) -> str:
        rows = [
            [m,
             self.results[(m, "fifo")].ipc_sum,
             self.results[(m, "lru")].ipc_sum,
             (self.lru_over_fifo(m) - 1.0) * 100.0]
            for m in self.mixes
        ]
        rows.append(["geomean", "", "", self.mean_gain_percent()])
        return format_table(
            "Figure 11: tagless-cache IPC under FIFO vs LRU replacement",
            ["mix", "fifo IPC", "lru IPC", "LRU gain %"],
            rows,
            float_format="{:.3f}",
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "mixes": list(self.mixes),
            "ipc": {
                m: {
                    "fifo": self.results[(m, "fifo")].ipc_sum,
                    "lru": self.results[(m, "lru")].ipc_sum,
                }
                for m in self.mixes
            },
            "lru_gain_percent": {
                m: (self.lru_over_fifo(m) - 1.0) * 100.0
                for m in self.mixes
            },
            "mean_gain_percent": self.mean_gain_percent(),
        }


def run_replacement_study(
    mixes: Sequence[str] = MIX_ORDER,
    accesses: int = DEFAULT_MIX_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    machine: Optional[MachineSpec] = None,
    harness: Optional[Harness] = None,
) -> ReplacementResult:
    """Run the Figure 11 ablation: FIFO vs LRU for the tagless cache."""
    specs = {
        (mix, policy): JobSpec(
            design="tagless",
            workload=mix,
            workload_kind="mix",
            accesses=accesses,
            cache_megabytes=cache_megabytes,
            num_cores=4,
            replacement=policy,
            capacity_scale=capacity_scale,
            warmup_fraction=warmup_fraction,
            machine=machine,
        )
        for policy in ("fifo", "lru")
        for mix in mixes
    }
    return ReplacementResult(
        mixes=tuple(mixes), results=_sweep(specs, harness)
    )


# ----------------------------------------------------------------------
# Figure 12: multi-threaded PARSEC
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ParsecResult:
    """Per-(program, design) outcomes for the PARSEC figure."""

    programs: Tuple[str, ...]
    designs: Tuple[str, ...]
    results: Dict[Tuple[str, str], SimulationResult]

    def normalized_ipc(self, program: str) -> Dict[str, float]:
        values = {
            d: self.results[(program, d)].ipc_sum for d in self.designs
        }
        return normalize_to(values, "no-l3")

    def normalized_edp(self, program: str) -> Dict[str, float]:
        values = {d: self.results[(program, d)].edp for d in self.designs}
        return normalize_to(values, "no-l3")

    def ipc_table(self) -> str:
        rows = [
            [p] + [self.normalized_ipc(p)[d] for d in self.designs]
            for p in self.programs
        ]
        return format_table(
            "Figure 12a: IPC normalised to No-L3 (multi-threaded PARSEC)",
            ["program"] + list(self.designs),
            rows,
        )

    def edp_table(self) -> str:
        rows = [
            [p] + [self.normalized_edp(p)[d] for d in self.designs]
            for p in self.programs
        ]
        return format_table(
            "Figure 12b: EDP normalised to No-L3 (lower is better)",
            ["program"] + list(self.designs),
            rows,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "programs": list(self.programs),
            "designs": list(self.designs),
            "normalized_ipc": {
                p: self.normalized_ipc(p) for p in self.programs
            },
            "normalized_edp": {
                p: self.normalized_edp(p) for p in self.programs
            },
        }


def run_parsec(
    programs: Sequence[str] = PARSEC_ORDER,
    designs: Sequence[str] = DESIGN_NAMES,
    accesses: int = DEFAULT_MIX_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    machine: Optional[MachineSpec] = None,
    harness: Optional[Harness] = None,
) -> ParsecResult:
    """Run the Figure 12 sweep: 4 PARSEC programs, 4 threads, shared pages."""
    specs = {
        (program, design): JobSpec(
            design=design,
            workload=program,
            workload_kind="parsec",
            accesses=accesses,
            cache_megabytes=cache_megabytes,
            num_cores=4,
            capacity_scale=capacity_scale,
            warmup_fraction=warmup_fraction,
            machine=machine,
            parsec_threads=4,
        )
        for program in programs
        for design in designs
    }
    return ParsecResult(
        programs=tuple(programs),
        designs=tuple(designs),
        results=_sweep(specs, harness),
    )


# ----------------------------------------------------------------------
# Figure 13: non-cacheable pages on 459.GemsFDTD
# ----------------------------------------------------------------------
@dataclasses.dataclass
class NonCacheableResult:
    """Tagless IPC without vs with NC classification of low-reuse pages."""

    baseline: SimulationResult
    with_nc: SimulationResult
    nc_pages: int
    threshold: int

    def gain_percent(self) -> float:
        return percent_delta(self.with_nc.ipc_sum, self.baseline.ipc_sum)

    def table(self) -> str:
        rows = [
            ["tagless", self.baseline.ipc_sum, ""],
            ["tagless + NC", self.with_nc.ipc_sum,
             f"+{self.gain_percent():.1f}%"],
        ]
        return format_table(
            f"Figure 13: effect of non-cacheable pages on GemsFDTD "
            f"({self.nc_pages} pages below {self.threshold} accesses "
            "flagged NC)",
            ["configuration", "IPC", "gain"],
            rows,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline_ipc": self.baseline.ipc_sum,
            "with_nc_ipc": self.with_nc.ipc_sum,
            "nc_pages": self.nc_pages,
            "threshold": self.threshold,
            "gain_percent": self.gain_percent(),
        }


def run_noncacheable_study(
    program: str = "GemsFDTD",
    threshold: int = 32,
    accesses: int = DEFAULT_ACCESSES,
    capacity_scale: int = 64,
    cache_megabytes: int = 1024,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    machine: Optional[MachineSpec] = None,
    harness: Optional[Harness] = None,
) -> NonCacheableResult:
    """Run the Section 5.4 case study.

    Pages with fewer than ``threshold`` accesses in the trace (the
    paper's offline-profiling criterion: fewer than half of a page's 64
    blocks touched) are flagged NC, so they bypass the DRAM cache and
    stop polluting it.  The NC page set itself is recomputed inside the
    job from the deterministic trace, so both points cache cleanly.
    """
    common = dict(
        design="tagless",
        workload=program,
        workload_kind="spec",
        accesses=accesses,
        cache_megabytes=cache_megabytes,
        num_cores=1,
        capacity_scale=capacity_scale,
        warmup_fraction=warmup_fraction,
        machine=machine,
    )
    specs = {
        "baseline": JobSpec(**common),
        "with_nc": JobSpec(**common, nc_threshold=threshold),
    }
    results = _sweep(specs, harness)

    # Count the flagged pages for the table caption (cheap relative to
    # the simulations; the trace is deterministic, so this matches what
    # the with_nc job computed internally).
    generator = TraceGenerator(
        spec_profile(program), capacity_scale=capacity_scale
    )
    counts = generator.generate(accesses).page_access_counts()
    nc_pages = sum(1 for count in counts.values() if count < threshold)

    return NonCacheableResult(
        baseline=results["baseline"],
        with_nc=results["with_nc"],
        nc_pages=nc_pages,
        threshold=threshold,
    )
