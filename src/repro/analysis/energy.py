"""Energy accounting and the EDP metric (Figures 7, 9, 12).

The breakdown follows the paper's methodology: DRAM access energy from
Table 4 (accumulated inside the two devices during simulation), core and
on-die cache power in the McPAT style (constants in
:class:`repro.common.config.EnergyModelConfig`), and -- for the SRAM-tag
design only -- tag-array probe energy plus leakage.  The tagless design's
"zero energy waste for cache tags" shows up here as the absence of those
two terms.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.common.addressing import BYTES_PER_MB
from repro.cpu.multicore import CoreResult
from repro.designs.base import MemorySystemDesign


@dataclasses.dataclass
class EnergyBreakdown:
    """Per-component energy of one run, in joules."""

    core_j: float
    ondie_dynamic_j: float
    ondie_leakage_j: float
    tag_dynamic_j: float
    tag_leakage_j: float
    in_package_j: float
    off_package_j: float

    @property
    def total_j(self) -> float:
        return (
            self.core_j
            + self.ondie_dynamic_j
            + self.ondie_leakage_j
            + self.tag_dynamic_j
            + self.tag_leakage_j
            + self.in_package_j
            + self.off_package_j
        )

    @property
    def dram_j(self) -> float:
        return self.in_package_j + self.off_package_j

    @property
    def tag_j(self) -> float:
        """Total tag overhead -- zero by construction for tagless."""
        return self.tag_dynamic_j + self.tag_leakage_j

    def as_dict(self) -> dict:
        return dataclasses.asdict(self) | {"total_j": self.total_j}


def compute_energy(
    design: MemorySystemDesign,
    cores: List[CoreResult],
    elapsed_ns: float,
) -> EnergyBreakdown:
    """Assemble the breakdown for a finished run.

    Cores burn active power while executing and idle power once their
    trace has drained (multi-programmed runs finish at different times);
    the L2's leakage uses the *nominal* capacity since leakage scales
    with the real array, not the simulation-scaled one.
    """
    cfg = design.config
    energy_cfg = cfg.energy
    cycle_ns = 1.0 / cfg.core.frequency_ghz

    core_nj = 0.0
    for core in cores:
        active_ns = core.cycles * cycle_ns
        idle_ns = max(0.0, elapsed_ns - active_ns)
        core_nj += (
            energy_cfg.core_active_watts * active_ns
            + energy_cfg.core_idle_watts * idle_ns
        )
    # Cores with no bound trace idle for the whole run.
    for _ in range(cfg.num_cores - len(cores)):
        core_nj += energy_cfg.core_idle_watts * elapsed_ns

    ondie_probes = 0.0
    for hierarchy in design.ondie:
        # Every access probes L1; L2 is probed on L1 misses.
        ondie_probes += hierarchy.accesses
        ondie_probes += hierarchy.l2_hits + hierarchy.misses
    ondie_dynamic_nj = ondie_probes * energy_cfg.ondie_access_nj

    l2_megabytes = cfg.num_cores * cfg.l2.capacity_bytes / BYTES_PER_MB
    ondie_leakage_nj = (
        energy_cfg.l2_leakage_watts_per_mb * l2_megabytes * elapsed_ns
    )

    tag_dynamic_nj = design.probe_energy_nj()
    tag_leakage_nj = design.leakage_watts() * elapsed_ns

    in_package_nj = design.in_package.energy.total_nj(elapsed_ns)
    off_package_nj = design.off_package.energy.total_nj(elapsed_ns)

    return EnergyBreakdown(
        core_j=core_nj * 1e-9,
        ondie_dynamic_j=ondie_dynamic_nj * 1e-9,
        ondie_leakage_j=ondie_leakage_nj * 1e-9,
        tag_dynamic_j=tag_dynamic_nj * 1e-9,
        tag_leakage_j=tag_leakage_nj * 1e-9,
        in_package_j=in_package_nj * 1e-9,
        off_package_j=off_package_nj * 1e-9,
    )
