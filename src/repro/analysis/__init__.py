"""Analysis layer: AMAT equations, energy/EDP model, experiment runners.

- :mod:`repro.analysis.amat` implements Equations 1-5 of the paper as an
  analytic model, fed either with hand-picked parameters or with measured
  component statistics from a simulation;
- :mod:`repro.analysis.energy` turns a finished design + run time into an
  energy breakdown and EDP;
- :mod:`repro.analysis.report` formats paper-style tables and normalised
  series;
- :mod:`repro.analysis.experiments` contains one runner per reproduced
  table/figure, shared by the benchmarks and examples.
"""

from repro.analysis.amat import (
    AMATInputs,
    amat_sram_tag,
    amat_tagless,
    miss_penalty_ctlb,
)
from repro.analysis.energy import EnergyBreakdown, compute_energy
from repro.analysis.report import format_table, normalize_to

__all__ = [
    "AMATInputs",
    "amat_sram_tag",
    "amat_tagless",
    "miss_penalty_ctlb",
    "EnergyBreakdown",
    "compute_energy",
    "format_table",
    "normalize_to",
]
