"""Analytic average-memory-access-time model -- Equations 1-5.

The paper derives AMAT for the SRAM-tag baseline (Equations 1-3) and the
tagless cache (Equations 4-5).  This module implements both expressions
so they can be (a) unit-tested against hand-computed values, (b) fed with
*measured* component statistics from a simulation to cross-check the
simulator (the Figure 8 benchmark does exactly that), and (c) used for
quick what-if studies without running traces.

All times are in core cycles, all rates in [0, 1].
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class AMATInputs:
    """Shared model parameters for one configuration point.

    Attributes mirror the symbols of Equations 1-5:

    - ``tlb_miss_rate`` / ``tlb_miss_penalty`` -- conventional TLB terms;
    - ``l12_hit_time`` / ``l12_miss_rate`` -- the on-die cache pair seen
      as one unit, as the equations do;
    - ``tag_time`` -- ``AccessTime_SRAM-tag`` (Table 6);
    - ``block_time_in_pkg`` -- ``BlockAccessTime_in-pkg``;
    - ``page_time_off_pkg`` -- ``PageAccessTime_off-pkg`` (a 4 KB fill);
    - ``l3_miss_rate`` -- DRAM-cache miss rate (SRAM-tag design);
    - ``victim_miss_rate`` -- ``MissRate_Victim``: fraction of cTLB
      misses that do *not* find the page already cached;
    - ``gipt_time`` -- ``AccessTime_GIPT`` (two off-package writes).
    """

    tlb_miss_rate: float
    tlb_miss_penalty: float
    l12_hit_time: float
    l12_miss_rate: float
    tag_time: float
    block_time_in_pkg: float
    page_time_off_pkg: float
    l3_miss_rate: float
    victim_miss_rate: float
    gipt_time: float

    def __post_init__(self) -> None:
        for name in (
            "tlb_miss_rate",
            "l12_miss_rate",
            "l3_miss_rate",
            "victim_miss_rate",
        ):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be a rate in [0,1], got {value}")


def avg_l3_latency_sram(inputs: AMATInputs) -> float:
    """Equation 3: AvgL3Latency for the SRAM-tag cache.

    The tag probe is unconditional -- it gates hits *and* misses -- which
    is the latency the tagless design deletes.
    """
    return (
        inputs.tag_time
        + inputs.block_time_in_pkg
        + inputs.l3_miss_rate * inputs.page_time_off_pkg
    )


def amat_sram_tag(inputs: AMATInputs) -> float:
    """Equations 1-2: full AMAT of the SRAM-tag baseline."""
    amat_tlb_hit = (
        inputs.l12_hit_time
        + inputs.l12_miss_rate * avg_l3_latency_sram(inputs)
    )
    return inputs.tlb_miss_rate * inputs.tlb_miss_penalty + amat_tlb_hit


def miss_penalty_ctlb(inputs: AMATInputs) -> float:
    """Equation 5: the cTLB miss penalty.

    A cTLB miss always pays the conventional walk; only when the page is
    genuinely absent (a victim *miss*) does it also pay the GIPT update
    and the off-package page copy.
    """
    return inputs.tlb_miss_penalty + inputs.victim_miss_rate * (
        inputs.gipt_time + inputs.page_time_off_pkg
    )


def amat_tagless(inputs: AMATInputs) -> float:
    """Equation 4: full AMAT of the tagless cache.

    Note what is *missing* relative to :func:`amat_sram_tag`: no
    ``tag_time`` and no per-access L3 miss term -- a cTLB hit guarantees
    an in-package hit at plain ``block_time_in_pkg``.
    """
    return (
        inputs.tlb_miss_rate * miss_penalty_ctlb(inputs)
        + inputs.l12_hit_time
        + inputs.l12_miss_rate * inputs.block_time_in_pkg
    )


def tagless_advantage(inputs: AMATInputs) -> float:
    """AMAT(SRAM-tag) - AMAT(tagless): positive when tagless wins.

    Useful for sweeping the analytic model over rates to find the
    crossover (e.g. how high the victim miss rate must climb before the
    fill-at-TLB-miss policy stops paying off).
    """
    return amat_sram_tag(inputs) - amat_tagless(inputs)
