"""Machine-checkable validation of the paper's headline claims.

``python -m repro.cli validate`` runs a reduced version of the full
evaluation and grades each reproduced claim PASS/FAIL, printing the
evidence.  This is the repository's self-check: the benchmarks regenerate
the numbers, this module asserts the *shapes* the paper stakes out:

1. design ordering: No-L3 < BI < SRAM-tag < tagless <= ideal (IPC);
2. BI alone is a small improvement;
3. tagless beats SRAM-tag on EDP (no tag energy);
4. tagless has lower average L3 latency than SRAM-tag on every program;
5. multi-programmed: both caches win big; tagless >= SRAM-tag on EDP;
6. PARSEC: streamcluster gains most, swaptions barely moves;
7. NC pages help GemsFDTD;
8. GIPT size: 2.56 MB per 1 GB, ~0.25 % overhead;
9. Table 6 tag latencies are exact.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.analysis import experiments
from repro.analysis.report import format_table
from repro.common.addressing import BYTES_PER_MB
from repro.common.config import tag_array_parameters
from repro.core.gipt import gipt_storage_megabytes


@dataclasses.dataclass
class ClaimResult:
    claim_id: str
    description: str
    passed: bool
    evidence: str


class ValidationReport:
    """Outcome of one validation run."""

    def __init__(self, results: List[ClaimResult]):
        self.results = results

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def table(self) -> str:
        rows = [
            [r.claim_id, "PASS" if r.passed else "FAIL", r.description,
             r.evidence]
            for r in self.results
        ]
        return format_table(
            "Validation: the paper's claims vs this build",
            ["claim", "verdict", "description", "evidence"],
            rows,
        )


def run_validation(
    single_accesses: int = 40_000,
    mix_accesses: int = 30_000,
) -> ValidationReport:
    """Run the reduced evaluation and grade every claim."""
    claims: List[ClaimResult] = []

    def record(claim_id: str, description: str, passed: bool,
               evidence: str) -> None:
        claims.append(ClaimResult(claim_id, description, passed, evidence))

    # --- single-programmed subset (claims 1-4) -----------------------
    single = experiments.run_single_programmed(
        programs=("sphinx3", "milc", "GemsFDTD", "libquantum"),
        accesses=single_accesses,
    )
    gm = {d: single.geomean_ipc(d) for d in single.designs}
    record(
        "ordering",
        "No-L3 < BI < SRAM < tagless <= ideal (geomean IPC)",
        gm["no-l3"] < gm["bi"] < gm["sram"] < gm["tagless"]
        <= gm["ideal"] * 1.001,
        " / ".join(f"{d}={gm[d]:.3f}" for d in single.designs),
    )
    record(
        "bi-small",
        "OS-oblivious BI is only a small improvement (paper: +4.0%)",
        1.0 < gm["bi"] < 1.12,
        f"bi={gm['bi']:.3f}",
    )
    edp = {d: single.geomean_edp(d) for d in single.designs}
    record(
        "edp",
        "tagless EDP < SRAM-tag EDP < No-L3 (paper: -26.5% vs SRAM)",
        edp["tagless"] < edp["sram"] < 1.0,
        f"sram={edp['sram']:.3f} tagless={edp['tagless']:.3f}",
    )
    latency_ok = all(
        single.l3_latency(p, "tagless") < single.l3_latency(p, "sram")
        for p in single.programs
    )
    record(
        "l3-latency",
        "tagless avg L3 latency below SRAM-tag for every program "
        "(paper: -9.9% geomean)",
        latency_ok,
        ", ".join(
            f"{p}:{single.l3_latency(p, 'tagless') / single.l3_latency(p, 'sram') - 1:+.1%}"
            for p in single.programs
        ),
    )

    # --- multi-programmed subset (claim 5) ----------------------------
    mixes = experiments.run_multi_programmed(
        mixes=("MIX1", "MIX5"), accesses=mix_accesses,
    )
    mix_gm = {d: mixes.geomean_ipc(d) for d in mixes.designs}
    mix_edp = {d: mixes.geomean_edp(d) for d in mixes.designs}
    record(
        "mixes",
        "multi-programmed: caches win big; tagless EDP <= SRAM "
        "(paper: +34.9/+38.4% IPC)",
        mix_gm["sram"] > 1.1 and mix_gm["tagless"] > 1.1
        and mix_edp["tagless"] <= mix_edp["sram"] * 1.02,
        f"sram={mix_gm['sram']:.3f} tagless={mix_gm['tagless']:.3f} "
        f"edp {mix_edp['sram']:.3f}/{mix_edp['tagless']:.3f}",
    )

    # --- PARSEC subset (claim 6) --------------------------------------
    parsec = experiments.run_parsec(
        programs=("swaptions", "streamcluster"), accesses=mix_accesses,
    )
    sc = parsec.normalized_ipc("streamcluster")["tagless"]
    sw = parsec.normalized_ipc("swaptions")["tagless"]
    record(
        "parsec",
        "streamcluster gains a lot, swaptions barely moves "
        "(paper: +24.0% vs ~0%)",
        sc > 1.10 and sw < 1.10 and sc > sw,
        f"streamcluster={sc:.3f} swaptions={sw:.3f}",
    )

    # --- NC case study (claim 7) ---------------------------------------
    nc = experiments.run_noncacheable_study(accesses=single_accesses * 2)
    record(
        "nc-pages",
        "flagging low-reuse GemsFDTD pages NC helps (paper: +7.1%)",
        nc.gain_percent() > 0.0,
        f"gain={nc.gain_percent():+.1f}% ({nc.nc_pages} NC pages)",
    )

    # --- structural claims (8-9) ---------------------------------------
    gipt_mb = gipt_storage_megabytes(1.0, num_cores=4)
    record(
        "gipt-size",
        "GIPT: 2.56 MB per 1 GB cache, ~0.25% overhead (Section 3.2)",
        abs(gipt_mb - 2.5625) < 0.01,
        f"{gipt_mb:.4f} MB",
    )
    table6 = [
        tag_array_parameters(mb * BYTES_PER_MB)[1]
        for mb in (128, 256, 512, 1024)
    ]
    record(
        "table6",
        "SRAM tag latencies match Table 6 exactly",
        table6 == [5, 6, 9, 11],
        f"cycles={table6}",
    )

    return ValidationReport(claims)
