"""Job execution: parallel fan-out with a deterministic serial fallback.

:func:`run_jobs` takes an ordered list of :class:`JobSpec` and returns
one :class:`JobResult` per spec **in the same order**, regardless of
completion order.  ``jobs=1`` executes in-process (no pool, no pickling
-- the debuggable reference path); ``jobs>1`` fans misses out to a
``ProcessPoolExecutor``.  Because every job is reconstructed from its
spec inside the worker, parallel and serial runs produce bit-identical
metrics -- a property the test suite locks.

Errors are captured *per job*: a point that raises yields a
``JobResult`` carrying the error string while the rest of the sweep
completes and caches normally.  Callers that need every point (the
figure runners) raise :class:`HarnessError` on any failure; callers
that stream artifacts (``repro sweep``) simply record the failed rows.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

import dataclasses

from repro.common.errors import ReproError
from repro.cpu.simulator import SimulationResult
from repro.harness.artifacts import RunArtifact
from repro.harness.cache import ResultCache
from repro.harness.jobs import JobResult, JobSpec, execute_job


class HarnessError(ReproError):
    """One or more jobs of a sweep failed (details in the message)."""


def _execute_captured(
    spec: JobSpec,
) -> Tuple[Optional[SimulationResult], Optional[str], float]:
    """Run one spec, trapping any exception into a string.

    Runs inside worker processes, so the error is stringified here --
    arbitrary exception objects are not reliably picklable.
    """
    start = time.perf_counter()
    try:
        result = execute_job(spec)
        return result, None, time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
        error = f"{type(exc).__name__}: {exc}"
        return None, error, time.perf_counter() - start


def _pool_worker(
    payload: Tuple[int, JobSpec],
) -> Tuple[int, Optional[SimulationResult], Optional[str], float]:
    index, spec = payload
    result, error, wall = _execute_captured(spec)
    return index, result, error, wall


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress=None,
    artifact: Optional[RunArtifact] = None,
    observer=None,
) -> List[JobResult]:
    """Execute ``specs`` and return their outcomes in input order.

    Cache hits are resolved up front in the parent process (they never
    occupy a worker); only misses are dispatched.  Each completed job is
    reported to ``progress``, ``artifact`` and ``observer`` (an
    :class:`~repro.obs.harness.HarnessObserver` or anything with a
    ``job_done(outcome)`` method) as it lands, and stored in the cache
    on success.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    outcomes: List[Optional[JobResult]] = [None] * len(specs)
    pending: List[Tuple[int, JobSpec]] = []

    cache_status = "off" if cache is None else "miss"
    for index, spec in enumerate(specs):
        if cache is not None:
            start = time.perf_counter()
            result = cache.get(spec)
            if result is not None:
                outcomes[index] = JobResult(
                    spec=spec,
                    result=result,
                    wall_time_s=time.perf_counter() - start,
                    cache_status="hit",
                )
                _report(outcomes[index], progress, artifact, observer)
                continue
        pending.append((index, spec))

    def finish(index: int, result, error, wall) -> None:
        spec = specs[index]
        if cache is not None and error is None:
            cache.put(spec, result, wall_time_s=wall)
        outcomes[index] = JobResult(
            spec=spec,
            result=result,
            error=error,
            wall_time_s=wall,
            cache_status=cache_status,
        )
        _report(outcomes[index], progress, artifact, observer)

    if jobs == 1 or len(pending) <= 1:
        for index, spec in pending:
            result, error, wall = _execute_captured(spec)
            finish(index, result, error, wall)
    else:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_pool_worker, item) for item in pending
            }
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index, result, error, wall = future.result()
                    finish(index, result, error, wall)

    return [outcome for outcome in outcomes if outcome is not None]


def _report(outcome: JobResult, progress, artifact, observer=None) -> None:
    if progress is not None:
        progress.job_done(outcome)
    if artifact is not None:
        artifact.record(outcome)
    if observer is not None:
        observer.job_done(outcome)


@dataclasses.dataclass
class Harness:
    """Bundle of execution options threaded through the figure runners.

    ``Harness()`` is the neutral configuration -- serial, uncached,
    silent -- so every runner keeps its old behaviour when no harness is
    passed.  The CLI builds one from ``--jobs`` / ``--cache-dir`` /
    ``--no-cache``; benchmarks from ``REPRO_BENCH_JOBS`` etc.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    progress: object = None
    artifact: Optional[RunArtifact] = None
    observer: object = None

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        return run_jobs(
            specs,
            jobs=self.jobs,
            cache=self.cache,
            progress=self.progress,
            artifact=self.artifact,
            observer=self.observer,
        )

    def run_strict(
        self, specs: Sequence[JobSpec]
    ) -> List[SimulationResult]:
        """Run specs and raise :class:`HarnessError` if any point failed.

        The figure runners need *every* point to render their tables,
        but by running the whole sweep first (and caching the good
        points) a retry after a fix only recomputes the failures.
        """
        outcomes = self.run(specs)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            detail = "; ".join(
                f"{o.spec.label}: {o.error}" for o in failures[:5]
            )
            more = "" if len(failures) <= 5 else f" (+{len(failures) - 5} more)"
            raise HarnessError(
                f"{len(failures)}/{len(outcomes)} jobs failed: {detail}{more}"
            )
        return [o.result for o in outcomes]
