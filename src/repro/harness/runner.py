"""Job execution: parallel fan-out with a deterministic serial fallback.

:func:`run_jobs` takes an ordered list of :class:`JobSpec` and returns
one :class:`JobResult` per spec **in the same order**, regardless of
completion order.  ``jobs=1`` executes in-process (no pool, no pickling
-- the debuggable reference path); ``jobs>1`` -- or any configured
timeout -- fans misses out to a supervised
:class:`~repro.harness.pool.WorkerPool`.  Because every job is
reconstructed from its spec inside the worker, parallel and serial runs
produce bit-identical metrics -- a property the test suite locks.

Failures are captured *per job* and never abort the sweep:

- a point that **raises** yields a ``JobResult`` with ``status="error"``
  carrying the error string and a traceback tail;
- a point that **hangs** past its wall-clock budget
  (``JobSpec.timeout_s``, ``run_jobs(timeout_s=...)``, or
  ``$REPRO_JOB_TIMEOUT``) has its worker killed and is reported
  ``status="timeout"``;
- a point whose **worker process dies** (OOM killer, SIGKILL) is
  reported ``status="worker-crashed"``; the pool spawns a replacement
  worker and the remaining points continue.  This is the supervised
  pool's reason for existing: ``ProcessPoolExecutor`` would raise
  ``BrokenProcessPool`` out of every in-flight future instead.

``retries=N`` grants every failed point up to ``N`` more attempts
(exponential backoff from ``retry_backoff_s``), and ``resume=`` seeds
completed outcomes from a prior run's JSONL artifact so an interrupted
sweep recomputes only missing or failed points.  All knobs default off,
preserving bit-identical legacy behaviour.

Callers that need every point (the figure runners) raise
:class:`HarnessError` on any failure; callers that stream artifacts
(``repro sweep``) simply record the failed rows.
"""

from __future__ import annotations

import collections
import os
import time
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import dataclasses

from repro.common.errors import ReproError
from repro.cpu.simulator import SimulationResult
from repro.harness.artifacts import RunArtifact
from repro.harness.cache import ResultCache, simulation_result_from_dict
from repro.harness.jobs import JobResult, JobSpec, execute_captured
from repro.harness.pool import DONE, HEARTBEAT, WorkerPool
from repro.harness.shm import TraceArena
from repro.obs.metrics import get_registry

#: Environment variable supplying the default per-job timeout (seconds).
TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"


class HarnessError(ReproError):
    """One or more jobs of a sweep failed (details in the message)."""


def resolve_default_timeout(timeout_s: Optional[float]) -> Optional[float]:
    """Run-level timeout: explicit argument, else ``$REPRO_JOB_TIMEOUT``.

    A malformed environment value raises :class:`HarnessError` -- a
    mistyped timeout must not silently run an unbounded sweep.  Zero or
    negative values mean "no timeout".
    """
    if timeout_s is None:
        raw = os.environ.get(TIMEOUT_ENV)
        if not raw:
            return None
        try:
            timeout_s = float(raw)
        except ValueError:
            raise HarnessError(
                f"bad {TIMEOUT_ENV} value {raw!r}: expected seconds"
            ) from None
    return timeout_s if timeout_s > 0 else None


def _retry_delay(backoff_s: float, attempt: int) -> float:
    """Exponential backoff: ``backoff_s * 2**attempt`` (attempt 0-based)."""
    return backoff_s * (2.0 ** attempt)


def _hook(observer, name: str, *args) -> None:
    """Invoke an *optional* observer hook.

    The required observer surface is ``job_done`` (and ``job_retry``,
    already guarded); the fleet-observability hooks -- ``job_dispatched``,
    ``job_finished``, ``worker_heartbeat`` -- are looked up dynamically
    so observers written against the older protocol keep working.
    """
    if observer is None:
        return
    fn = getattr(observer, name, None)
    if fn is not None:
        fn(*args)


def _seed_from_record(spec: JobSpec, record: Dict[str, object],
                      ) -> Optional[JobResult]:
    """Rebuild a completed outcome from a prior artifact's job record.

    Only ``status=="ok"`` rows carrying a full result payload are
    usable; anything else (failed rows, rows from artifacts predating
    result embedding, corrupt payloads) returns ``None`` and the point
    is recomputed.
    """
    payload = record.get("result")
    if record.get("status") != "ok" or not isinstance(payload, dict):
        return None
    try:
        result = simulation_result_from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None
    return JobResult(spec=spec, result=result, cache_status="resume")


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress=None,
    artifact: Optional[RunArtifact] = None,
    observer=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.0,
    resume: Optional[Dict[str, Dict[str, object]]] = None,
    heartbeat_s: Optional[float] = None,
) -> List[JobResult]:
    """Execute ``specs`` and return their outcomes in input order.

    Resume seeds and cache hits are resolved up front in the parent
    process (they never occupy a worker); only misses are dispatched.
    Each completed job is reported to ``progress``, ``artifact`` and
    ``observer`` (an :class:`~repro.obs.harness.HarnessObserver` or
    anything with a ``job_done(outcome)`` method) as it lands, and
    stored in the cache on success.  ``resume`` maps cache keys to job
    records from a prior artifact (see
    :func:`repro.harness.artifacts.load_resume_map`).

    A ``KeyboardInterrupt`` drains gracefully: workers are killed, and
    every outcome that already landed has been streamed to the artifact
    -- re-running with that artifact as ``resume`` picks up where the
    interrupted sweep stopped.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if retry_backoff_s < 0:
        raise ValueError("retry_backoff_s must be >= 0")
    default_timeout = resolve_default_timeout(timeout_s)

    def job_timeout(spec: JobSpec) -> Optional[float]:
        if spec.timeout_s is not None:
            return spec.timeout_s
        return default_timeout

    outcomes: List[Optional[JobResult]] = [None] * len(specs)
    pending: List[Tuple[int, JobSpec]] = []

    cache_status = "off" if cache is None else "miss"
    for index, spec in enumerate(specs):
        if resume:
            record = resume.get(spec.cache_key())
            if record is not None:
                seeded = _seed_from_record(spec, record)
                if seeded is not None:
                    outcomes[index] = seeded
                    _report(seeded, progress, artifact, observer)
                    continue
        if cache is not None:
            start = time.perf_counter()
            result = cache.get(spec)
            if result is not None:
                outcomes[index] = JobResult(
                    spec=spec,
                    result=result,
                    wall_time_s=time.perf_counter() - start,
                    cache_status="hit",
                )
                _report(outcomes[index], progress, artifact, observer)
                continue
        pending.append((index, spec))

    def finish(index: int, spec: JobSpec, result, error, detail, wall,
               status: str = "", attempt: int = 0,
               transfer: Tuple[int, int] = (0, 0)) -> None:
        if cache is not None and error is None:
            cache.put(spec, result, wall_time_s=wall)
        outcomes[index] = JobResult(
            spec=spec,
            result=result,
            error=error,
            wall_time_s=wall,
            cache_status=cache_status,
            status=status,
            error_detail=detail,
            retries=attempt,
            trace_bytes_pickled=transfer[0],
            trace_bytes_shared=transfer[1],
        )
        _report(outcomes[index], progress, artifact, observer)

    def notify_retry(spec: JobSpec, attempt: int, error: str) -> None:
        if observer is not None and hasattr(observer, "job_retry"):
            observer.job_retry(spec, attempt, error)

    # The in-process path stays the default (debuggable, zero overhead)
    # unless real parallelism is requested or any job carries a timeout
    # -- enforcing a wall-clock budget requires a killable worker, so a
    # serial run with a timeout is supervised by a one-worker pool.
    needs_pool = any(job_timeout(spec) is not None for _, spec in pending)
    if pending and (needs_pool or (jobs > 1 and len(pending) > 1)):
        # The arena outlives every worker (segments are unlinked here,
        # in the parent, after the pool is torn down), so a crashed or
        # killed worker can never leak a segment -- it only ever held
        # an attachment.
        with TraceArena() as arena:
            _run_pooled(pending, min(jobs, len(pending)), job_timeout,
                        retries, retry_backoff_s, finish, notify_retry,
                        arena, observer=observer, heartbeat_s=heartbeat_s)
    else:
        for index, spec in pending:
            attempt = 0
            while True:
                result, error, detail, wall = execute_captured(spec, attempt)
                if error is None or attempt >= retries:
                    break
                notify_retry(spec, attempt, error)
                delay = _retry_delay(retry_backoff_s, attempt)
                attempt += 1
                if delay > 0:
                    time.sleep(delay)
            finish(index, spec, result, error, detail, wall,
                   attempt=attempt)

    # Any unfilled slot is a harness bookkeeping bug; silently dropping
    # it would hand callers a truncated list whose positions no longer
    # line up with their specs.
    missing = [index for index, outcome in enumerate(outcomes)
               if outcome is None]
    if missing:
        shown = ", ".join(specs[i].label for i in missing[:3])
        more = "" if len(missing) <= 3 else f", +{len(missing) - 3} more"
        raise HarnessError(
            f"internal error: {len(missing)}/{len(specs)} job slots left "
            f"unfilled ({shown}{more}); refusing to return a truncated "
            f"sweep"
        )
    return outcomes


#: One queued (or requeued) unit of work awaiting a worker:
#: index, spec, attempt, t_ready, t_enqueued.
_QueueEntry = Tuple[int, JobSpec, int, float, float]


def _run_pooled(pending, workers, job_timeout, retries, retry_backoff_s,
                finish, notify_retry, arena=None, observer=None,
                heartbeat_s=None) -> None:
    """Schedule ``pending`` over a supervised pool until all terminate.

    Owns the retry queue and deadline enforcement; terminal outcomes are
    delivered through ``finish``.  Workers are always torn down on the
    way out, including on ``KeyboardInterrupt`` -- landed outcomes have
    already been streamed, which is what makes an interrupted sweep
    resumable.  ``arena`` optionally publishes each job's traces to
    shared memory once per recipe; retries and replacement workers
    re-attach the same segments, so trace data crosses a process
    boundary at most once per sweep, not once per attempt.

    ``observer`` additionally receives the per-attempt lifecycle hooks
    (:func:`_hook`): dispatch with measured queue wait, attempt
    completion with worker attribution, and (when ``heartbeat_s`` is
    set) worker liveness beats.
    """
    t_start = time.monotonic()
    queue: Deque[_QueueEntry] = collections.deque(
        (index, spec, 0, 0.0, t_start) for index, spec in pending
    )
    queue_wait = get_registry().histogram(
        "repro_pool_queue_wait_seconds",
        "Seconds a job (or retry) waited for a worker")

    def share_for(spec):
        if arena is None:
            return None
        try:
            return arena.share_for(spec)
        except Exception:
            # Trace generation failed in the parent; hand the job to a
            # worker anyway so the failure is captured per-job instead
            # of aborting the sweep.
            return None

    def transfer_of(job) -> Tuple[int, int]:
        if job.share is None:
            return (0, 0)
        return (job.share.pickled_nbytes, job.share.shared_nbytes)

    def requeue_or_fail(job, error, detail, wall, status) -> None:
        if job.attempt < retries:
            notify_retry(job.spec, job.attempt, error)
            now = time.monotonic()
            ready = now + _retry_delay(retry_backoff_s, job.attempt)
            queue.append((job.index, job.spec, job.attempt + 1, ready, now))
        else:
            finish(job.index, job.spec, None, error, detail, wall,
                   status=status, attempt=job.attempt,
                   transfer=transfer_of(job))

    with WorkerPool(workers, heartbeat_s=heartbeat_s or 0.0) as pool:
        while queue or pool.busy():
            now = time.monotonic()
            # Dispatch every ready entry to available capacity; entries
            # still backing off go back to the front, order preserved.
            deferred: List[_QueueEntry] = []
            while queue and pool.has_capacity():
                entry = queue.popleft()
                if entry[3] > now:
                    deferred.append(entry)
                    continue
                index, spec, attempt, _ready, t_enqueued = entry
                worker_id = pool.submit(index, spec, attempt,
                                        job_timeout(spec),
                                        share=share_for(spec))
                wait_s = max(0.0, time.monotonic() - t_enqueued)
                queue_wait.observe(wait_s)
                _hook(observer, "job_dispatched",
                      index, spec, attempt, worker_id, wait_s)
            queue.extendleft(reversed(deferred))

            if not pool.busy():
                if not queue:
                    break
                # Everything queued is backing off; sleep until the
                # earliest entry becomes ready.
                wake = min(entry[3] for entry in queue)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            wakes = [entry[3] for entry in queue if entry[3] > now]
            deadline = pool.next_deadline()
            if deadline is not None:
                wakes.append(deadline)
            timeout = (max(0.0, min(wakes) - time.monotonic())
                       if wakes else None)

            for kind, job, payload in pool.poll(timeout):
                if kind == HEARTBEAT:
                    _hook(observer, "worker_heartbeat", payload)
                    continue
                if kind == DONE:
                    result, error, detail, wall = payload
                    _hook(observer, "job_finished", job.index, job.spec,
                          job.attempt, job.worker_id,
                          "ok" if error is None else "error", wall)
                    if error is None:
                        finish(job.index, job.spec, result, None, None,
                               wall, attempt=job.attempt,
                               transfer=transfer_of(job))
                    else:
                        requeue_or_fail(job, error, detail, wall, "error")
                else:  # the worker process died mid-job
                    wall = time.monotonic() - job.started
                    _hook(observer, "job_finished", job.index, job.spec,
                          job.attempt, job.worker_id, "worker-crashed",
                          wall)
                    error = (f"worker process died while running "
                             f"{job.spec.label} (killed or out of memory)")
                    requeue_or_fail(job, error, None, wall,
                                    "worker-crashed")

            for worker in pool.expired():
                job = worker.job
                pool.kill(worker)
                wall = time.monotonic() - job.started
                _hook(observer, "job_finished", job.index, job.spec,
                      job.attempt, job.worker_id, "timeout", wall)
                budget = job_timeout(job.spec)
                error = (f"timed out after {wall:.1f}s "
                         f"(budget {budget:g}s)")
                requeue_or_fail(job, error, None, wall, "timeout")


def _report(outcome: JobResult, progress, artifact, observer=None) -> None:
    if progress is not None:
        progress.job_done(outcome)
    if artifact is not None:
        artifact.record(outcome)
    if observer is not None:
        observer.job_done(outcome)


@dataclasses.dataclass
class Harness:
    """Bundle of execution options threaded through the figure runners.

    ``Harness()`` is the neutral configuration -- serial, uncached,
    silent, no timeouts or retries -- so every runner keeps its old
    behaviour when no harness is passed.  The CLI builds one from
    ``--jobs`` / ``--cache-dir`` / ``--no-cache`` / ``--timeout`` /
    ``--retries`` / ``--resume``; benchmarks from ``REPRO_BENCH_JOBS``
    etc.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    progress: object = None
    artifact: Optional[RunArtifact] = None
    observer: object = None
    #: Default per-job wall-clock budget (``None``: $REPRO_JOB_TIMEOUT,
    #: else unbounded).  ``JobSpec.timeout_s`` overrides per job.
    timeout_s: Optional[float] = None
    #: Extra attempts granted to each failed job.
    retries: int = 0
    #: First retry delay in seconds; doubles on each further attempt.
    retry_backoff_s: float = 0.0
    #: ``cache_key -> job record`` map from a prior run's artifact
    #: (:func:`repro.harness.artifacts.load_resume_map`).
    resume: Optional[Dict[str, Dict[str, object]]] = None
    #: Worker liveness-beat period in seconds (``None``/0: disabled).
    #: Enabled by ``--live`` so the monitor can show per-worker rows.
    heartbeat_s: Optional[float] = None

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        return run_jobs(
            specs,
            jobs=self.jobs,
            cache=self.cache,
            progress=self.progress,
            artifact=self.artifact,
            observer=self.observer,
            timeout_s=self.timeout_s,
            retries=self.retries,
            retry_backoff_s=self.retry_backoff_s,
            resume=self.resume,
            heartbeat_s=self.heartbeat_s,
        )

    def run_strict(
        self, specs: Sequence[JobSpec]
    ) -> List[SimulationResult]:
        """Run specs and raise :class:`HarnessError` if any point failed.

        The figure runners need *every* point to render their tables,
        but by running the whole sweep first (and caching the good
        points) a retry after a fix only recomputes the failures.
        """
        outcomes = self.run(specs)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            detail = "; ".join(
                f"{o.spec.label}: {o.error}" for o in failures[:5]
            )
            more = "" if len(failures) <= 5 else f" (+{len(failures) - 5} more)"
            raise HarnessError(
                f"{len(failures)}/{len(outcomes)} jobs failed: {detail}{more}"
            )
        return [o.result for o in outcomes]
