"""Deterministic fault injection for harness tests and CI chaos runs.

The fault-tolerance machinery in :mod:`repro.harness.runner` (timeouts,
retries, worker-crash recovery, resume) only matters when things go
wrong, which real sweeps do rarely and non-reproducibly.  This module
makes failure reproducible: ``REPRO_FAULT_INJECT`` names jobs (by a
substring of their :attr:`~repro.harness.jobs.JobSpec.label`) that must
hang, crash their worker process, or fail transiently, and
:func:`apply_faults` -- called at the top of every captured execution,
in whatever process that happens -- acts it out.

Grammar (comma-separated rules)::

    REPRO_FAULT_INJECT="hang:<label>,crash:<label>,flaky:<label>:<n>"

- ``hang:<label>``  -- sleep forever (exercises wall-clock timeouts);
- ``crash:<label>`` -- ``SIGKILL`` the executing process (exercises
  worker-crash recovery; do not use on the in-process serial path);
- ``flaky:<label>:<n>`` -- raise :class:`InjectedFault` on the first
  ``n`` attempts of the job, then succeed (exercises retries).

The environment is parsed at call time so tests can flip it per-case
with ``monkeypatch.setenv``; worker processes inherit it from the
parent at spawn/fork time.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from typing import List, Optional

from repro.common.errors import ConfigurationError

#: Environment variable holding the fault plan.
FAULT_ENV = "REPRO_FAULT_INJECT"


class InjectedFault(RuntimeError):
    """The deterministic failure a ``flaky`` rule raises."""


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One parsed rule: what to do (`kind`) to which jobs (`label`)."""

    kind: str  # "hang" | "crash" | "flaky"
    label: str  # substring matched against JobSpec.label
    count: int = 0  # flaky only: fail this many attempts, then succeed

    def matches(self, label: str) -> bool:
        return self.label in label


def parse_fault_plan(text: Optional[str]) -> List[FaultRule]:
    """Parse the ``REPRO_FAULT_INJECT`` grammar into rules.

    An empty/unset value yields no rules; a malformed value raises
    :class:`ConfigurationError` -- a chaos run with a typo'd plan must
    fail loudly, not silently run fault-free.
    """
    rules: List[FaultRule] = []
    if not text:
        return rules
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        kind = parts[0]
        if kind in ("hang", "crash") and len(parts) == 2 and parts[1]:
            rules.append(FaultRule(kind=kind, label=parts[1]))
        elif kind == "flaky" and len(parts) == 3 and parts[1]:
            try:
                count = int(parts[2])
            except ValueError:
                count = -1
            if count < 0:
                raise ConfigurationError(
                    f"bad flaky count in fault rule {token!r}"
                )
            rules.append(FaultRule(kind=kind, label=parts[1], count=count))
        else:
            raise ConfigurationError(
                f"bad fault rule {token!r}; expected hang:<label>, "
                f"crash:<label> or flaky:<label>:<n>"
            )
    return rules


def apply_faults(label: str, attempt: int = 0) -> None:
    """Act out the first matching rule of the environment's fault plan.

    No-op (one ``os.environ.get``) when ``REPRO_FAULT_INJECT`` is unset,
    which is every production run.  ``attempt`` is the zero-based retry
    attempt the caller is on, so ``flaky`` rules are deterministic
    across retries of the same job.
    """
    plan = os.environ.get(FAULT_ENV)
    if not plan:
        return
    for rule in parse_fault_plan(plan):
        if not rule.matches(label):
            continue
        if rule.kind == "hang":
            while True:  # parked until the supervisor kills this worker
                time.sleep(3600.0)
        if rule.kind == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        if rule.kind == "flaky" and attempt < rule.count:
            raise InjectedFault(
                f"injected flaky failure for {label!r} "
                f"(attempt {attempt + 1}/{rule.count})"
            )
        return
