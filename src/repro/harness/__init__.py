"""Experiment-execution engine: declarative jobs, parallel fan-out,
content-addressed result caching, and JSONL run artifacts.

The figure/table runners in :mod:`repro.analysis.experiments` enumerate
:class:`JobSpec` points and dispatch them through a :class:`Harness`;
``repro sweep`` exposes the same machinery for ad-hoc cartesian sweeps.

Typical use::

    from repro.harness import Harness, JobSpec, ResultCache

    harness = Harness(jobs=4, cache=ResultCache())
    outcomes = harness.run([
        JobSpec(design="tagless", workload="mcf", accesses=50_000),
        JobSpec(design="sram", workload="mcf", accesses=50_000),
    ])
"""

from repro.harness.artifacts import (
    ResumeMap,
    RunArtifact,
    default_artifact_path,
    job_metrics,
    load_resume_map,
    read_artifact,
)
from repro.harness.faults import FAULT_ENV, InjectedFault, parse_fault_plan
from repro.harness.cache import (
    CacheStats,
    ResultCache,
    resolve_cache_dir,
    simulation_result_from_dict,
    simulation_result_to_dict,
)
from repro.harness.jobs import (
    SCHEMA_VERSION,
    JobResult,
    JobSpec,
    execute_captured,
    execute_job,
    infer_workload_kind,
)
from repro.harness.progress import ProgressReporter
from repro.harness.runner import (
    TIMEOUT_ENV,
    Harness,
    HarnessError,
    resolve_default_timeout,
    run_jobs,
)

__all__ = [
    "CacheStats",
    "FAULT_ENV",
    "Harness",
    "HarnessError",
    "InjectedFault",
    "JobResult",
    "JobSpec",
    "ProgressReporter",
    "ResultCache",
    "ResumeMap",
    "RunArtifact",
    "SCHEMA_VERSION",
    "TIMEOUT_ENV",
    "default_artifact_path",
    "execute_captured",
    "execute_job",
    "infer_workload_kind",
    "job_metrics",
    "load_resume_map",
    "parse_fault_plan",
    "read_artifact",
    "resolve_cache_dir",
    "resolve_default_timeout",
    "run_jobs",
    "simulation_result_from_dict",
    "simulation_result_to_dict",
]
