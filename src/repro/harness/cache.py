"""Content-addressed on-disk cache of simulation results.

Entries are keyed by :meth:`repro.harness.jobs.JobSpec.cache_key` -- a
hash of every knob that determines the result plus the library base
seed -- and stored as standalone JSON files under
``~/.cache/repro/objects`` (overridable via ``--cache-dir`` or the
``REPRO_CACHE_DIR`` environment variable).  Because a key is a pure
function of the inputs, there is no invalidation protocol to get wrong:
changing any knob simply addresses a different object.  Entries whose
recorded schema or key disagree with what the current code computes
(e.g. after a :data:`~repro.harness.jobs.SCHEMA_VERSION` bump) are
deleted on read and counted as invalidations.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from typing import Dict, Optional

from repro.analysis.energy import EnergyBreakdown
from repro.cpu.multicore import CoreResult
from repro.cpu.simulator import SimulationResult
from repro.harness.jobs import SCHEMA_VERSION, JobSpec
from repro.obs.metrics import get_registry

#: Default cache root; ``REPRO_CACHE_DIR`` overrides it.
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro")

#: Age (seconds) past which a ``*.tmp`` staging file is considered
#: orphaned.  Young ones may belong to a concurrent writer mid
#: write-then-rename and must be left alone.
STALE_TMP_AGE_S = 15 * 60.0


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    """Pick the cache root: explicit argument > env var > default."""
    path = cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return os.path.expanduser(path)


def simulation_result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Flatten a :class:`SimulationResult` into JSON-safe primitives."""
    data = {
        "design_name": result.design_name,
        "cores": [dataclasses.asdict(core) for core in result.cores],
        "elapsed_ns": result.elapsed_ns,
        "mean_l3_latency_cycles": result.mean_l3_latency_cycles,
        "energy": dataclasses.asdict(result.energy),
        "stats": dict(result.stats),
    }
    # Optional sections (multi-tenant / resizable runs): written only
    # when present, so pre-existing entries stay byte-identical.
    if result.tenants is not None:
        data["tenants"] = [dict(t) for t in result.tenants]
    if result.resize_events is not None:
        data["resize_events"] = [dict(e) for e in result.resize_events]
    return data


def simulation_result_from_dict(data: Dict[str, object]) -> SimulationResult:
    """Inverse of :func:`simulation_result_to_dict`."""
    return SimulationResult(
        design_name=data["design_name"],
        cores=[CoreResult(**core) for core in data["cores"]],
        elapsed_ns=data["elapsed_ns"],
        mean_l3_latency_cycles=data["mean_l3_latency_cycles"],
        energy=EnergyBreakdown(**data["energy"]),
        stats=dict(data["stats"]),
        tenants=data.get("tenants"),
        resize_events=data.get("resize_events"),
    )


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store/invalidation accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    #: Orphaned ``*.tmp`` write-staging files swept from the store
    #: (writers killed between ``mkstemp`` and ``os.replace``).
    stale_tmp: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self) | {"hit_rate": self.hit_rate}


class ResultCache:
    """Maps :class:`JobSpec` -> :class:`SimulationResult` on disk."""

    def __init__(self, cache_dir: Optional[str] = None, enabled: bool = True):
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.enabled = enabled
        self.stats = CacheStats()
        # Fleet metrics ride alongside the per-instance CacheStats: the
        # registry hands back shared no-ops when disabled, so the cost
        # here is one attribute lookup per rare event.
        registry = get_registry()
        self._m_lookups = registry.counter(
            "repro_cache_lookups_total",
            "Result-cache lookups by outcome (hit/miss)")
        self._m_stores = registry.counter(
            "repro_cache_stores_total", "Results written to the cache")
        self._m_invalidated = registry.counter(
            "repro_cache_invalidated_total",
            "Entries deleted on read (schema/key mismatch, corrupt)")
        self._m_stale_tmp = registry.counter(
            "repro_cache_stale_tmp_total",
            "Orphaned *.tmp staging files swept")
        # A writer killed between mkstemp and os.replace (OOM, SIGKILL,
        # power loss) leaks its staging file forever; nothing else ever
        # deletes it, so each cache construction sweeps old ones.
        if enabled:
            self._sweep_stale_tmp(max_age_s=STALE_TMP_AGE_S)

    @property
    def objects_dir(self) -> str:
        return os.path.join(self.cache_dir, "objects")

    def entry_path(self, spec: JobSpec) -> str:
        key = spec.cache_key()
        # Shard by key prefix so huge sweeps don't pile thousands of
        # files into one directory.
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    def get(self, spec: JobSpec) -> Optional[SimulationResult]:
        """Return the cached result for ``spec``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        path = self.entry_path(spec)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            self._m_lookups.inc(outcome="miss")
            return None
        except (json.JSONDecodeError, OSError):
            self._invalidate(path)
            return None
        if (entry.get("schema") != SCHEMA_VERSION
                or entry.get("key") != spec.cache_key()):
            self._invalidate(path)
            return None
        try:
            result = simulation_result_from_dict(entry["result"])
        except (KeyError, TypeError):
            self._invalidate(path)
            return None
        self.stats.hits += 1
        self._m_lookups.inc(outcome="hit")
        return result

    def put(self, spec: JobSpec, result: SimulationResult,
            wall_time_s: float = 0.0) -> str:
        """Store ``result`` under ``spec``'s key; returns the entry path."""
        path = self.entry_path(spec)
        if not self.enabled:
            return path
        entry = {
            "schema": SCHEMA_VERSION,
            "key": spec.cache_key(),
            "spec": spec.to_dict(),
            "wall_time_s": wall_time_s,
            "result": simulation_result_to_dict(result),
        }
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # Write-then-rename so a crashed run never leaves a torn entry
        # that a later invocation would have to invalidate.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.stores += 1
        self._m_stores.inc()
        return path

    def clear(self) -> int:
        """Delete every cached object (and every ``*.tmp`` staging file,
        whatever its age); returns how many files were removed."""
        removed = 0
        if not os.path.isdir(self.objects_dir):
            return removed
        for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            for filename in filenames:
                if filename.endswith(".json"):
                    os.unlink(os.path.join(dirpath, filename))
                    removed += 1
        removed += self._sweep_stale_tmp(max_age_s=0.0)
        return removed

    def _sweep_stale_tmp(self, max_age_s: float) -> int:
        """Delete ``*.tmp`` files older than ``max_age_s``; count them."""
        removed = 0
        if not os.path.isdir(self.objects_dir):
            return removed
        cutoff = time.time() - max_age_s
        for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            for filename in filenames:
                if not filename.endswith(".tmp"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    pass  # raced with its writer's os.replace: not stale
        self.stats.stale_tmp += removed
        if removed:
            self._m_stale_tmp.inc(removed)
        return removed

    # ------------------------------------------------------------------
    def _invalidate(self, path: str) -> None:
        self.stats.invalidated += 1
        self.stats.misses += 1
        self._m_invalidated.inc()
        self._m_lookups.inc(outcome="miss")
        try:
            os.unlink(path)
        except OSError:
            pass
