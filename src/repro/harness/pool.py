"""Supervised worker pool: per-job timeouts, precise crash attribution.

``concurrent.futures.ProcessPoolExecutor`` cannot express either
guarantee the fault-tolerant runner needs.  A hung worker stalls
``wait()`` forever -- futures of already-running jobs cannot be
cancelled -- and one OOM-killed worker raises ``BrokenProcessPool`` out
of *every* outstanding future, discarding the whole in-flight set
without saying which job was on the dead process.

This pool keeps one duplex :class:`multiprocessing.Pipe` per worker and
records which job each worker is running, so a deadline overrun or a
worker death is attributed to exactly one job.  The supervisor
(:func:`repro.harness.runner.run_jobs`) kills and reaps that one
worker, a replacement is spawned on the next submit, and the rest of
the sweep never notices.  Workers are persistent -- they loop over
jobs, amortizing spawn cost exactly like an executor pool -- and run
the same :func:`~repro.harness.jobs.execute_captured` body the serial
path uses, so parallel results stay bit-identical.

Messages on the pipe are tagged tuples: workers send
``("done", index, result, error, detail, wall)`` when a job lands and,
when ``heartbeat_s`` is set, ``("hb", payload)`` liveness beats from a
daemon thread while the main thread is deep in a simulation.  Tagging
is what makes heartbeats safe to interleave: a stale beat that arrives
after its job's result is recognised and dropped instead of being
misparsed as an outcome.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import threading
import time
from typing import List, Optional, Tuple

from repro.harness.jobs import JobSpec, execute_captured
from repro.harness.shm import TraceShare, attach_bindings
from repro.obs.metrics import get_registry

#: Seconds to wait for a worker to exit voluntarily before killing it.
_JOIN_GRACE_S = 2.0

#: Message tags on the worker->parent pipe.
_MSG_DONE, _MSG_HEARTBEAT = "done", "hb"


def _heartbeat_loop(conn, send_lock, state, stop, heartbeat_s) -> None:
    """Worker-side beat sender (daemon thread).

    The worker's main thread blocks inside ``execute_captured`` for the
    whole job, so liveness has to come from a sibling thread.  It reads
    the mutable ``state`` the main loop maintains and shares
    ``send_lock`` with result sends so beats and outcomes never
    interleave mid-pickle on the pipe.
    """
    while not stop.wait(heartbeat_s):
        job = state.get("job")
        if job is None:
            continue
        index, label, attempt, accesses = job
        payload = {
            "index": index,
            "label": label,
            "attempt": attempt,
            "elapsed_s": time.monotonic() - state["t0"],
            "jobs_done": state["jobs_done"],
            "accesses_done": state["accesses_done"],
            "accesses_in_flight": accesses,
        }
        try:
            with send_lock:
                conn.send((_MSG_HEARTBEAT, payload))
        except Exception:
            return  # pipe gone: the worker is exiting


def _worker_main(conn, heartbeat_s: float = 0.0) -> None:
    """Worker loop: receive ``(index, spec, attempt, share)``, send the
    outcome.

    ``share`` is an optional :class:`~repro.harness.shm.TraceShare`
    manifest: when present the worker attaches the parent's published
    trace segments instead of regenerating the traces from the spec.
    Attachment failure (a vanished segment) falls back to regeneration
    -- slower, never wrong, since both paths are bit-identical.

    SIGINT is ignored so a Ctrl-C on the parent's terminal (delivered to
    the whole process group) leaves the drain decision to the
    supervisor instead of killing workers mid-job at random.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    send_lock = threading.Lock()
    stop = threading.Event()
    #: Shared with the heartbeat thread; ``job`` is None between jobs.
    state = {"job": None, "t0": 0.0, "jobs_done": 0, "accesses_done": 0}
    if heartbeat_s and heartbeat_s > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(conn, send_lock, state, stop, heartbeat_s),
            daemon=True, name="repro-heartbeat",
        ).start()
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        index, spec, attempt, share = payload
        job_accesses = spec.accesses * max(1, getattr(spec, "num_cores", 1))
        state["t0"] = time.monotonic()
        state["job"] = (index, spec.label, attempt, job_accesses)
        bindings = None
        if share is not None:
            try:
                bindings = attach_bindings(share)
            except Exception:  # pragma: no cover - segment raced away
                bindings = None
        outcome = execute_captured(spec, attempt, bindings=bindings)
        state["job"] = None
        state["jobs_done"] += 1
        state["accesses_done"] += job_accesses
        try:
            with send_lock:
                conn.send((_MSG_DONE, index) + outcome)
        except Exception:  # result not picklable: report it as an error
            result, _error, _detail, wall = outcome
            with send_lock:
                conn.send((_MSG_DONE, index, None,
                           f"unpicklable result for {spec.label}: "
                           f"{type(result).__name__}", None, wall))
    stop.set()
    conn.close()


class _InFlight:
    """The job a worker is currently running, with its deadline."""

    __slots__ = ("index", "spec", "attempt", "deadline", "started", "share",
                 "worker_id")

    def __init__(self, index: int, spec: JobSpec, attempt: int,
                 timeout_s: Optional[float],
                 share: Optional[TraceShare] = None,
                 worker_id: int = 0):
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.started = time.monotonic()
        self.deadline = (self.started + timeout_s
                         if timeout_s is not None else None)
        #: Trace manifest dispatched with the job (None: regeneration).
        self.share = share
        #: Which pool worker is running it (tracing/live attribution).
        self.worker_id = worker_id


class WorkerHandle:
    """One supervised worker process and its command/result pipe."""

    __slots__ = ("process", "conn", "job", "id", "last_heartbeat")

    def __init__(self, ctx, worker_id: int, heartbeat_s: float = 0.0):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn, heartbeat_s), daemon=True,
            name=f"repro-harness-worker-{worker_id}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.job: Optional[_InFlight] = None
        #: Stable id for trace tracks and live rows; survives the
        #: process being replaced after a crash only as a *new* id --
        #: each spawned process gets its own.
        self.id = worker_id
        #: Most recent heartbeat payload (None until one arrives).
        self.last_heartbeat: Optional[dict] = None


#: Poll outcome kinds: a worker finished its job, died running it, or
#: (heartbeats enabled) reported liveness mid-job.
DONE, CRASHED, HEARTBEAT = "done", "crashed", "hb"


class WorkerPool:
    """At most ``max_workers`` live workers, spawned lazily on submit."""

    def __init__(self, max_workers: int, heartbeat_s: float = 0.0):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.heartbeat_s = heartbeat_s
        self._ctx = multiprocessing.get_context()
        self._workers: List[WorkerHandle] = []
        self._next_id = 0
        registry = get_registry()
        self._m_spawns = registry.counter(
            "repro_pool_worker_spawns_total",
            "Worker processes started by the supervised pool")
        self._m_crashes = registry.counter(
            "repro_pool_worker_crashes_total",
            "Worker processes that died mid-job")
        self._m_submits = registry.counter(
            "repro_pool_jobs_submitted_total",
            "Jobs handed to workers (retries resubmit)")
        self._m_heartbeats = registry.counter(
            "repro_pool_heartbeats_total",
            "Liveness beats received from busy workers")
        self._m_busy = registry.gauge(
            "repro_pool_busy_workers",
            "Workers currently running a job")

    # ------------------------------------------------------------------
    def busy(self) -> List[WorkerHandle]:
        return [w for w in self._workers if w.job is not None]

    def has_capacity(self) -> bool:
        """True when a submit would not have to wait for a worker."""
        return (any(w.job is None for w in self._workers)
                or len(self._workers) < self.max_workers)

    def submit(self, index: int, spec: JobSpec, attempt: int,
               timeout_s: Optional[float],
               share: Optional[TraceShare] = None) -> int:
        """Hand one job to an idle worker (spawning one if needed);
        returns the worker's id for attribution."""
        worker = None
        for candidate in self._workers:
            if candidate.job is None:
                if not candidate.process.is_alive():
                    # An idle worker that died (should not happen) is
                    # silently replaced; it was running nothing.
                    self._reap(candidate)
                    continue
                worker = candidate
                break
        if worker is None:
            if len(self._workers) >= self.max_workers:
                raise RuntimeError("no idle worker (check has_capacity)")
            worker = WorkerHandle(self._ctx, self._next_id, self.heartbeat_s)
            self._next_id += 1
            self._workers.append(worker)
            self._m_spawns.inc()
        worker.job = _InFlight(index, spec, attempt, timeout_s, share,
                               worker_id=worker.id)
        worker.conn.send((index, spec, attempt, share))
        self._m_submits.inc()
        self._m_busy.set(len(self.busy()))
        return worker.id

    # ------------------------------------------------------------------
    def poll(
        self, timeout: Optional[float],
    ) -> List[Tuple[str, _InFlight, Optional[object]]]:
        """Wait for worker activity and classify it.

        Returns ``(kind, job, payload)`` tuples: ``(DONE, job,
        (result, error, error_detail, wall_s))`` for a worker that sent
        its outcome back (the worker returns to the idle set);
        ``(CRASHED, job, None)`` for a worker whose process died
        mid-job (the worker is reaped; the pool shrinks until the next
        submit respawns); ``(HEARTBEAT, job, payload_dict)`` for a
        liveness beat (``payload["worker"]`` carries the worker id).
        Beats whose job index disagrees with the worker's current job
        are stale leftovers from a completed job and are dropped.
        """
        busy = self.busy()
        if not busy:
            return []
        ready = multiprocessing.connection.wait(
            [w.conn for w in busy], timeout=timeout,
        )
        events: List[Tuple[str, _InFlight, Optional[object]]] = []
        by_conn = {w.conn: w for w in busy}
        for conn in ready:
            worker = by_conn[conn]
            job = worker.job
            try:
                message = conn.recv()
            except Exception:
                # EOF/broken pipe: the worker died.  kill() also covers
                # the rare live-but-corrupt-stream case -- either way
                # this worker is unusable and its job is lost.
                self.kill(worker)
                self._m_crashes.inc()
                self._m_busy.set(len(self.busy()))
                events.append((CRASHED, job, None))
                continue
            tag = message[0]
            if tag == _MSG_HEARTBEAT:
                payload = dict(message[1])
                if job is None or payload.get("index") != job.index:
                    continue  # beat from a job that already landed
                payload["worker"] = worker.id
                worker.last_heartbeat = payload
                self._m_heartbeats.inc()
                events.append((HEARTBEAT, job, payload))
                continue
            _tag, index, result, error, detail, wall = message
            assert job is not None and index == job.index
            worker.job = None
            self._m_busy.set(len(self.busy()))
            events.append((DONE, job, (result, error, detail, wall)))
        return events

    def expired(self, now: Optional[float] = None) -> List[WorkerHandle]:
        """Busy workers whose job ran past its deadline."""
        now = time.monotonic() if now is None else now
        return [w for w in self.busy()
                if w.job.deadline is not None and now >= w.job.deadline]

    def next_deadline(self) -> Optional[float]:
        """Earliest deadline among in-flight jobs (monotonic time)."""
        deadlines = [w.job.deadline for w in self.busy()
                     if w.job.deadline is not None]
        return min(deadlines) if deadlines else None

    # ------------------------------------------------------------------
    def kill(self, worker: WorkerHandle) -> None:
        """Forcibly terminate one worker (hung or being drained)."""
        if worker.process.is_alive():
            worker.process.kill()
        self._reap(worker)
        self._m_busy.set(len(self.busy()))

    def shutdown(self) -> None:
        """Stop every worker: idle ones politely, busy ones forcibly."""
        for worker in list(self._workers):
            if worker.job is not None:
                self.kill(worker)
                continue
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            worker.process.join(timeout=_JOIN_GRACE_S)
            if worker.process.is_alive():  # pragma: no cover - stuck exit
                worker.process.kill()
            self._reap(worker)
        self._m_busy.set(0)

    def _reap(self, worker: WorkerHandle) -> None:
        worker.process.join(timeout=_JOIN_GRACE_S)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker in self._workers:
            self._workers.remove(worker)

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
