"""Supervised worker pool: per-job timeouts, precise crash attribution.

``concurrent.futures.ProcessPoolExecutor`` cannot express either
guarantee the fault-tolerant runner needs.  A hung worker stalls
``wait()`` forever -- futures of already-running jobs cannot be
cancelled -- and one OOM-killed worker raises ``BrokenProcessPool`` out
of *every* outstanding future, discarding the whole in-flight set
without saying which job was on the dead process.

This pool keeps one duplex :class:`multiprocessing.Pipe` per worker and
records which job each worker is running, so a deadline overrun or a
worker death is attributed to exactly one job.  The supervisor
(:func:`repro.harness.runner.run_jobs`) kills and reaps that one
worker, a replacement is spawned on the next submit, and the rest of
the sweep never notices.  Workers are persistent -- they loop over
jobs, amortizing spawn cost exactly like an executor pool -- and run
the same :func:`~repro.harness.jobs.execute_captured` body the serial
path uses, so parallel results stay bit-identical.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import time
from typing import List, Optional, Tuple

from repro.harness.jobs import JobSpec, execute_captured
from repro.harness.shm import TraceShare, attach_bindings

#: Seconds to wait for a worker to exit voluntarily before killing it.
_JOIN_GRACE_S = 2.0


def _worker_main(conn) -> None:
    """Worker loop: receive ``(index, spec, attempt, share)``, send the
    outcome.

    ``share`` is an optional :class:`~repro.harness.shm.TraceShare`
    manifest: when present the worker attaches the parent's published
    trace segments instead of regenerating the traces from the spec.
    Attachment failure (a vanished segment) falls back to regeneration
    -- slower, never wrong, since both paths are bit-identical.

    SIGINT is ignored so a Ctrl-C on the parent's terminal (delivered to
    the whole process group) leaves the drain decision to the
    supervisor instead of killing workers mid-job at random.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        index, spec, attempt, share = payload
        bindings = None
        if share is not None:
            try:
                bindings = attach_bindings(share)
            except Exception:  # pragma: no cover - segment raced away
                bindings = None
        outcome = execute_captured(spec, attempt, bindings=bindings)
        try:
            conn.send((index,) + outcome)
        except Exception:  # result not picklable: report it as an error
            result, _error, _detail, wall = outcome
            conn.send((index, None,
                       f"unpicklable result for {spec.label}: "
                       f"{type(result).__name__}", None, wall))
    conn.close()


class _InFlight:
    """The job a worker is currently running, with its deadline."""

    __slots__ = ("index", "spec", "attempt", "deadline", "started", "share")

    def __init__(self, index: int, spec: JobSpec, attempt: int,
                 timeout_s: Optional[float],
                 share: Optional[TraceShare] = None):
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.started = time.monotonic()
        self.deadline = (self.started + timeout_s
                         if timeout_s is not None else None)
        #: Trace manifest dispatched with the job (None: regeneration).
        self.share = share


class WorkerHandle:
    """One supervised worker process and its command/result pipe."""

    __slots__ = ("process", "conn", "job")

    def __init__(self, ctx):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name="repro-harness-worker",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.job: Optional[_InFlight] = None


#: Poll outcome kinds: a worker finished its job, or died running it.
DONE, CRASHED = "done", "crashed"


class WorkerPool:
    """At most ``max_workers`` live workers, spawned lazily on submit."""

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._ctx = multiprocessing.get_context()
        self._workers: List[WorkerHandle] = []

    # ------------------------------------------------------------------
    def busy(self) -> List[WorkerHandle]:
        return [w for w in self._workers if w.job is not None]

    def has_capacity(self) -> bool:
        """True when a submit would not have to wait for a worker."""
        return (any(w.job is None for w in self._workers)
                or len(self._workers) < self.max_workers)

    def submit(self, index: int, spec: JobSpec, attempt: int,
               timeout_s: Optional[float],
               share: Optional[TraceShare] = None) -> None:
        """Hand one job to an idle worker (spawning one if needed)."""
        worker = None
        for candidate in self._workers:
            if candidate.job is None:
                if not candidate.process.is_alive():
                    # An idle worker that died (should not happen) is
                    # silently replaced; it was running nothing.
                    self._reap(candidate)
                    continue
                worker = candidate
                break
        if worker is None:
            if len(self._workers) >= self.max_workers:
                raise RuntimeError("no idle worker (check has_capacity)")
            worker = WorkerHandle(self._ctx)
            self._workers.append(worker)
        worker.job = _InFlight(index, spec, attempt, timeout_s, share)
        worker.conn.send((index, spec, attempt, share))

    # ------------------------------------------------------------------
    def poll(
        self, timeout: Optional[float],
    ) -> List[Tuple[str, _InFlight, Optional[tuple]]]:
        """Wait for worker activity and classify it.

        Returns ``(kind, job, payload)`` tuples: ``(DONE, job,
        (result, error, error_detail, wall_s))`` for a worker that sent
        its outcome back (the worker returns to the idle set), or
        ``(CRASHED, job, None)`` for a worker whose process died
        mid-job (the worker is reaped; the pool shrinks until the next
        submit respawns).
        """
        busy = self.busy()
        if not busy:
            return []
        ready = multiprocessing.connection.wait(
            [w.conn for w in busy], timeout=timeout,
        )
        events: List[Tuple[str, _InFlight, Optional[tuple]]] = []
        by_conn = {w.conn: w for w in busy}
        for conn in ready:
            worker = by_conn[conn]
            job = worker.job
            try:
                message = conn.recv()
            except Exception:
                # EOF/broken pipe: the worker died.  kill() also covers
                # the rare live-but-corrupt-stream case -- either way
                # this worker is unusable and its job is lost.
                self.kill(worker)
                events.append((CRASHED, job, None))
                continue
            index, result, error, detail, wall = message
            assert job is not None and index == job.index
            worker.job = None
            events.append((DONE, job, (result, error, detail, wall)))
        return events

    def expired(self, now: Optional[float] = None) -> List[WorkerHandle]:
        """Busy workers whose job ran past its deadline."""
        now = time.monotonic() if now is None else now
        return [w for w in self.busy()
                if w.job.deadline is not None and now >= w.job.deadline]

    def next_deadline(self) -> Optional[float]:
        """Earliest deadline among in-flight jobs (monotonic time)."""
        deadlines = [w.job.deadline for w in self.busy()
                     if w.job.deadline is not None]
        return min(deadlines) if deadlines else None

    # ------------------------------------------------------------------
    def kill(self, worker: WorkerHandle) -> None:
        """Forcibly terminate one worker (hung or being drained)."""
        if worker.process.is_alive():
            worker.process.kill()
        self._reap(worker)

    def shutdown(self) -> None:
        """Stop every worker: idle ones politely, busy ones forcibly."""
        for worker in list(self._workers):
            if worker.job is not None:
                self.kill(worker)
                continue
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            worker.process.join(timeout=_JOIN_GRACE_S)
            if worker.process.is_alive():  # pragma: no cover - stuck exit
                worker.process.kill()
            self._reap(worker)

    def _reap(self, worker: WorkerHandle) -> None:
        worker.process.join(timeout=_JOIN_GRACE_S)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker in self._workers:
            self._workers.remove(worker)

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
