"""Lightweight progress/telemetry reporting for harness runs.

One line per completed job on ``stderr`` (so stdout stays reserved for
the paper-style tables, byte-identical whether or not a reporter is
attached) plus an end-of-run summary with cache accounting.  Everything
degrades to a no-op when ``enabled=False``, which is what the test
suite uses.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from repro.harness.cache import CacheStats
from repro.harness.jobs import JobResult


class ProgressReporter:
    """Prints ``[k/N] design/workload status`` lines as jobs finish."""

    def __init__(
        self,
        total: Optional[int] = None,
        stream: Optional[IO[str]] = None,
        label: str = "sweep",
        enabled: bool = True,
    ):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.enabled = enabled
        self.done = 0
        self.errors = 0
        self.cache_hits = 0
        # monotonic(): rate/ETA math must be immune to wall-clock
        # adjustments (NTP slews, DST) over long sweeps.
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    def job_done(self, outcome: JobResult) -> None:
        """Record (and print) one finished job."""
        self.done += 1
        if not outcome.ok:
            self.errors += 1
        if outcome.cache_status == "hit":
            self.cache_hits += 1
        if not self.enabled:
            return
        total = str(self.total) if self.total is not None else "?"
        status = "ok" if outcome.ok else f"ERROR {outcome.error}"
        cache_note = ""
        if outcome.cache_status != "off":
            cache_note = f", cache {outcome.cache_status}"
        self._emit(
            f"[{self.done}/{total}] {outcome.spec.label} {status} "
            f"({outcome.wall_time_s:.2f}s{cache_note}{self._eta_note()})"
        )

    def _eta_note(self) -> str:
        """``, eta Xs`` estimate, or empty when it cannot be computed.

        Guards every division: zero jobs done, zero elapsed time (all
        cache hits on a fast disk) and an unknown total all degrade to
        no estimate rather than a ZeroDivisionError or ``nan``.
        """
        if self.total is None or self.done <= 0:
            return ""
        remaining = self.total - self.done
        if remaining <= 0:
            return ""
        elapsed = time.monotonic() - self._started
        if elapsed <= 0.0:
            return ""
        eta = remaining * (elapsed / self.done)
        return f", eta {eta:.0f}s"

    def summary(self, cache_stats: Optional[CacheStats] = None) -> str:
        """Build (and print) the end-of-run summary line."""
        elapsed = time.monotonic() - self._started
        parts = [
            f"{self.label}: {self.done} jobs",
            f"{self.errors} errors",
            f"{elapsed:.2f}s wall",
        ]
        if self.done > 0 and elapsed > 0.0:
            # Rate only when well-defined: an empty or instant run has
            # no meaningful jobs/s and must not divide by zero.
            parts.append(f"{self.done / elapsed:.2f} jobs/s")
        if cache_stats is not None and cache_stats.lookups:
            parts.append(
                f"cache {cache_stats.hits}/{cache_stats.lookups} hits "
                f"({100.0 * cache_stats.hit_rate:.0f}%)"
            )
        text = ", ".join(parts)
        if self.enabled:
            self._emit(text)
        return text

    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        print(line, file=self.stream, flush=True)
