"""JSONL run artifacts: a durable record of every job a sweep executed.

Each harness run can stream one record per job -- the full spec, the
headline metrics, wall time, and whether the point came from the cache
-- into an append-only JSONL file, bracketed by a header and a summary
record.  The artifact is the ground truth for "what did this sweep
actually run, and how long did it take": a warm re-run shows the same
specs with ``"cache": "hit"`` and near-zero wall times, which is how
the caching claims in EXPERIMENTS.md are audited.
"""

from __future__ import annotations

import datetime
import json
import os
import time
from typing import Dict, List, Optional

from repro.common.machine import system_config_to_dict
from repro.harness.cache import CacheStats, simulation_result_to_dict
from repro.harness.jobs import JobResult, code_fingerprint
from repro.cpu.simulator import SimulationResult


def job_metrics(result: SimulationResult) -> Dict[str, object]:
    """The headline metrics recorded per job (a superset of `repro run`)."""
    metrics = {
        "ipc": result.ipc_sum,
        "per_core_ipc": [core.ipc for core in result.cores],
        "instructions": result.instructions,
        "elapsed_ms": result.elapsed_ns / 1e6,
        "mean_l3_latency_cycles": result.mean_l3_latency_cycles,
        "energy_j": result.total_energy_j,
        "edp_js": result.edp,
    }
    if result.tenants:
        # Multi-tenant QoS headlines: the *worst* tenant's tail and the
        # *slowest* tenant's throughput -- the numbers an SLO watches.
        metrics["tenant_p99_demand_ns"] = max(
            t["p99_demand_ns"] for t in result.tenants
        )
        metrics["tenant_ipc_min"] = min(
            t["ipc"] for t in result.tenants
        )
    if result.resize_events is not None:
        metrics["resize_remapped_pages"] = float(sum(
            e.get("remapped", 0) for e in result.resize_events
        ))
    return metrics


def default_artifact_path(cache_dir: str, name: str) -> str:
    """Timestamped path under ``<cache_dir>/runs`` for a named run."""
    stamp = datetime.datetime.now().strftime("%Y%m%d-%H%M%S-%f")
    return os.path.join(cache_dir, "runs", f"{name}-{stamp}.jsonl")


class RunArtifact:
    """Streams header / per-job / summary records to a JSONL file.

    With ``store_results=True`` (the default) every ``ok`` row embeds
    the full flattened simulation result, which is what makes an
    artifact *resumable*: ``run_jobs(resume=load_resume_map(path))``
    seeds those outcomes without recomputing them.  Pass
    ``store_results=False`` to keep rows headline-only when artifacts
    must stay small and resume is not needed.
    """

    def __init__(self, path: str, name: str = "run",
                 meta: Optional[Dict[str, object]] = None,
                 store_results: bool = True):
        self.path = path
        self.name = name
        self.store_results = store_results
        self._started = time.perf_counter()
        self._jobs = 0
        self._errors = 0
        self._hits = 0
        self._resumed = 0
        self._timeouts = 0
        self._crashes = 0
        self._retries = 0
        self._job_wall_s = 0.0
        self._closed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "w")
        self._write({
            "record": "header",
            "run": name,
            "created": datetime.datetime.now().isoformat(timespec="seconds"),
            # Provenance: which build of the simulator produced the rows
            # below.  Resume reads it back to refuse (or warn about)
            # seeding results across code versions.
            "code": code_fingerprint(),
            "meta": meta or {},
        })

    # ------------------------------------------------------------------
    def record(self, outcome: JobResult) -> None:
        """Append one job record."""
        self._jobs += 1
        self._job_wall_s += outcome.wall_time_s
        self._retries += outcome.retries
        if outcome.cache_status == "hit":
            self._hits += 1
        if outcome.cache_status == "resume":
            self._resumed += 1
        entry: Dict[str, object] = {
            "record": "job",
            "key": outcome.spec.cache_key(),
            "spec": outcome.spec.to_dict(),
            # Per-row provenance, not just header-level: an artifact
            # chained through resumes can mix rows from several builds.
            "code": code_fingerprint(),
            # The fully-resolved machine this row simulated -- preset +
            # overrides already folded into every SystemConfig field --
            # so a row's provenance never depends on what a preset name
            # meant at the time it was written.
            "machine": {
                "spec": outcome.spec.machine.to_dict(),
                "hash": outcome.spec.machine.spec_hash(),
                "resolved": system_config_to_dict(
                    outcome.spec.system_config()
                ),
            },
            "cache": outcome.cache_status,
            "cache_hit": outcome.cache_status == "hit",
            "wall_time_s": outcome.wall_time_s,
            "retries": outcome.retries,
        }
        if outcome.ok:
            entry["status"] = "ok"
            entry["metrics"] = job_metrics(outcome.result)
            if self.store_results:
                entry["result"] = simulation_result_to_dict(outcome.result)
        else:
            self._errors += 1
            if outcome.status == "timeout":
                self._timeouts += 1
            elif outcome.status == "worker-crashed":
                self._crashes += 1
            entry["status"] = outcome.status
            entry["error"] = outcome.error
            if outcome.error_detail:
                entry["error_detail"] = outcome.error_detail
        self._write(entry)

    def record_all(self, outcomes: List[JobResult]) -> None:
        for outcome in outcomes:
            self.record(outcome)

    @property
    def counters(self) -> Dict[str, int]:
        """Execution-health counters accumulated so far (a live view).

        The same numbers the summary record carries; exposed so the
        ``--json`` summaries of ``repro sweep``/``experiment`` (and the
        campaign run summary) can surface retry/timeout/crash counts
        without re-reading the artifact.
        """
        return {
            "jobs": self._jobs,
            "errors": self._errors,
            "timeouts": self._timeouts,
            "worker_crashes": self._crashes,
            "retries": self._retries,
            "resumed": self._resumed,
            "cache_hits": self._hits,
        }

    def close(self, cache_stats: Optional[CacheStats] = None) -> None:
        """Append the summary record and close the file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        summary: Dict[str, object] = {
            "record": "summary",
            "run": self.name,
            **self.counters,
            "cache_hit_rate": self._hits / self._jobs if self._jobs else 0.0,
            "job_wall_time_s": self._job_wall_s,
            "elapsed_s": time.perf_counter() - self._started,
        }
        if cache_stats is not None:
            summary["cache"] = cache_stats.as_dict()
        self._write(summary)
        self._handle.close()

    def __enter__(self) -> "RunArtifact":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _write(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()


def read_artifact(path: str) -> List[Dict[str, object]]:
    """Load every record of a JSONL artifact (tests and tooling)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class ResumeMap(Dict[str, Dict[str, object]]):
    """``cache_key -> job record`` map plus provenance accounting.

    A plain dict to :func:`repro.harness.runner.run_jobs`; the extra
    attributes let the CLI report how trustworthy the seeds are:

    - ``code_mismatches``: usable rows recorded under a *different*
      code fingerprint than the current build's;
    - ``unknown_code``: rows from artifacts predating per-row
      provenance (no ``code`` field);
    - ``skipped``: rows dropped because ``strict`` resume refused them.
    """

    def __init__(self) -> None:
        super().__init__()
        self.code_mismatches = 0
        self.unknown_code = 0
        self.skipped = 0


def load_resume_map(path: str, strict: bool = False) -> ResumeMap:
    """Index a prior artifact's completed job records by cache key.

    Only ``status=="ok"`` rows that embed a full result payload are
    kept -- those are the points :func:`repro.harness.runner.run_jobs`
    can seed without recomputation.  Failed, timed-out, crashed or
    headline-only rows are omitted so resume recomputes them.  The last
    record per key wins, so an artifact that itself came from a resumed
    run chains correctly.  A torn trailing line (the sweep died
    mid-write) is skipped rather than fatal: everything before it is
    still a valid resume seed.

    Rows whose recorded ``code`` fingerprint differs from the current
    build's are counted in ``code_mismatches`` (callers should warn:
    those results were computed by different simulator code).  With
    ``strict=True`` such rows -- and rows with no recorded fingerprint
    at all -- are skipped instead, so a ``--resume-strict`` run only
    ever seeds provenance-verified results.
    """
    current = code_fingerprint()
    seeds = ResumeMap()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not (record.get("record") == "job"
                    and record.get("status") == "ok"
                    and isinstance(record.get("result"), dict)
                    and isinstance(record.get("key"), str)):
                continue
            code = record.get("code")
            if code is None:
                seeds.unknown_code += 1
                if strict:
                    seeds.skipped += 1
                    continue
            elif code != current:
                seeds.code_mismatches += 1
                if strict:
                    seeds.skipped += 1
                    continue
            seeds[record["key"]] = record
    return seeds


# Re-exported so artifact consumers can round-trip full results without
# importing the cache module.
__all__ = [
    "ResumeMap",
    "RunArtifact",
    "default_artifact_path",
    "job_metrics",
    "load_resume_map",
    "read_artifact",
    "simulation_result_to_dict",
]
