"""Zero-copy trace dispatch over ``multiprocessing.shared_memory``.

Worker processes historically *regenerated* every trace from its spec --
deterministic, but a sweep of K jobs over the same multi-million-access
workload paid the synthesis cost K times (and K more times on retries).
The :class:`TraceArena` moves that cost to the parent, exactly once per
distinct trace recipe:

- the parent materialises the spec's bindings, packs each trace's
  columnar buffer (:class:`~repro.workloads.trace.ColumnarTrace`) into
  one ``SharedMemory`` segment, and keeps the handle;
- the job rides the pool's submit payload with a tiny
  :class:`TraceShare` manifest (segment names and trace metadata, no
  trace data);
- the worker attaches the named segments -- zero-copy, cached for the
  life of the process -- and replays ``ColumnarTrace`` views over them.

Lifecycle is parent-owned: segments are created before the first submit
that needs them and unlinked in the runner's ``finally``, so a worker
that is SIGKILLed mid-job (or replaced after a crash) never leaks a
segment -- it only ever held an *attachment*.  Retries and replacement
workers re-attach the same segments; nothing is ever re-published.

``REPRO_SHM=0`` disables the arena (workers fall back to in-worker
regeneration, the pre-arena behaviour).  Platforms where ``SharedMemory``
creation fails fall back per-trace to shipping the packed bytes inline
in the manifest -- still one materialisation in the parent, but the
bytes then cross the pipe by pickling and are counted as such
(``JobResult.trace_bytes_pickled`` vs ``trace_bytes_shared``).

Either way the results are bit-identical to regeneration: the golden
oracle locks ``ColumnarTrace`` replay against the object traces, and
the recipe key covers every input trace generation depends on.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import Dict, List, Optional, Tuple

from repro.common import rng
from repro.cpu.multicore import BoundTrace
from repro.obs.metrics import get_registry
from repro.workloads.trace import ColumnarTrace

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stripped-down interpreters
    _shared_memory = None

#: Environment switch: ``0``/``off``/``false`` disables shared-memory
#: dispatch (workers regenerate traces from specs, the legacy path).
SHM_ENV = "REPRO_SHM"


def shm_enabled() -> bool:
    """Shared-memory dispatch is on unless ``$REPRO_SHM`` turns it off."""
    if _shared_memory is None:
        return False
    raw = os.environ.get(SHM_ENV, "1").strip().lower()
    return raw not in ("0", "off", "false", "no")


@dataclasses.dataclass(frozen=True)
class SegmentRef:
    """One published trace: where it lives and how to rebind it."""

    #: ``SharedMemory`` name to attach, or ``None`` when the payload
    #: travels inline (shared memory unavailable).
    segment: Optional[str]
    #: Packed columns for the inline fallback (``None`` in shm mode).
    payload: Optional[bytes]
    accesses: int
    trace_name: str
    base_cpi: float
    mlp: float
    core_id: int
    process_id: int

    @property
    def nbytes(self) -> int:
        return ColumnarTrace.buffer_nbytes(self.accesses)


@dataclasses.dataclass(frozen=True)
class TraceShare:
    """The manifest a job carries instead of its trace data."""

    refs: Tuple[SegmentRef, ...]

    @property
    def shared_nbytes(self) -> int:
        """Trace bytes served from shared memory for one job."""
        return sum(r.nbytes for r in self.refs if r.segment is not None)

    @property
    def pickled_nbytes(self) -> int:
        """Trace bytes that cross the pipe by value for one job."""
        return sum(r.nbytes for r in self.refs if r.segment is None)


def _recipe_key(spec) -> tuple:
    """Everything trace generation depends on, nothing else.

    Two specs differing only in design/config knobs share one published
    trace set -- that sharing, across a sweep's design axis, is most of
    the arena's win.
    """
    return (
        spec.workload,
        spec.workload_kind,
        spec.accesses,
        spec.capacity_scale,
        spec.parsec_threads,
        spec.effective_seed,
    )


class TraceArena:
    """Parent-owned registry of published trace segments.

    ``share_for(spec)`` returns the manifest for a spec's trace recipe,
    publishing it on first sight and reusing it afterwards.  ``close()``
    unlinks every segment; the runner calls it in a ``finally`` so the
    segments' lifetime is bounded by the sweep, not by any worker.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = shm_enabled() if enabled is None else enabled
        self._shares: Dict[tuple, TraceShare] = {}
        self._segments: list = []
        self.publishes = 0
        self.reuses = 0
        self.bytes_published = 0
        registry = get_registry()
        self._m_shares = registry.counter(
            "repro_shm_shares_total",
            "Trace-share requests by disposition (publish/reuse)")
        self._m_bytes = registry.counter(
            "repro_shm_trace_bytes_total",
            "Trace bytes published by transport (shared/pickled)")

    # ------------------------------------------------------------------
    def share_for(self, spec) -> Optional[TraceShare]:
        """Manifest for ``spec``'s traces (publishing them if new)."""
        if not self.enabled:
            return None
        if spec.workload_kind == "tenants":
            # Tenant jobs replay a context-switched schedule built
            # in-worker from the scenario file; there are no per-core
            # bindings to publish.
            return None
        key = _recipe_key(spec)
        share = self._shares.get(key)
        if share is not None:
            self.reuses += 1
            self._m_shares.inc(disposition="reuse")
            return share
        share = self._publish(spec)
        self._shares[key] = share
        self.publishes += 1
        self._m_shares.inc(disposition="publish")
        return share

    def _publish(self, spec) -> TraceShare:
        # bindings() consumes the ambient base seed the same way
        # execute_job does; replicate its override so parent-generated
        # traces match what the worker would have regenerated.
        previous = rng.BASE_SEED
        override = spec.base_seed is not None and spec.base_seed != previous
        if override:
            rng.BASE_SEED = spec.base_seed
        try:
            bindings = spec.bindings()
        finally:
            if override:
                rng.BASE_SEED = previous
        refs = []
        for binding in bindings:
            columnar = ColumnarTrace.from_trace(binding.trace)
            nbytes = columnar.nbytes
            segment_name = None
            payload = None
            segment = self._create_segment(nbytes)
            if segment is not None:
                columnar.pack_into(segment.buf)
                segment_name = segment.name
                self._segments.append(segment)
                self._m_bytes.inc(nbytes, transport="shared")
            else:  # inline fallback: ship the packed bytes by value
                buffer = bytearray(nbytes)
                columnar.pack_into(buffer)
                payload = bytes(buffer)
                self._m_bytes.inc(nbytes, transport="pickled")
            self.bytes_published += nbytes
            refs.append(SegmentRef(
                segment=segment_name,
                payload=payload,
                accesses=len(columnar),
                trace_name=columnar.name,
                base_cpi=columnar.base_cpi,
                mlp=columnar.mlp,
                core_id=binding.core_id,
                process_id=binding.process_id,
            ))
        return TraceShare(refs=tuple(refs))

    @staticmethod
    def _create_segment(nbytes: int):
        if _shared_memory is None:
            return None
        try:
            return _shared_memory.SharedMemory(create=True,
                                               size=max(1, nbytes))
        except OSError:  # /dev/shm missing or full: inline fallback
            return None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, []
        self._shares.clear()
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass

    def __enter__(self) -> "TraceArena":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Segment-name -> (SharedMemory, ColumnarTrace) attachments, cached for
#: the worker process's lifetime: a worker running 50 jobs over one
#: trace attaches (and type-casts) it once.
_ATTACHMENTS: Dict[str, tuple] = {}


def _attach_segment(ref: SegmentRef) -> ColumnarTrace:
    cached = _ATTACHMENTS.get(ref.segment)
    if cached is not None:
        return cached[1]
    segment = _shared_memory.SharedMemory(name=ref.segment, create=False)
    # Under the spawn start method each worker runs its own resource
    # tracker, which assumes whoever attaches also owns cleanup and
    # would unlink the segment when this worker exits -- yanking it out
    # from under the parent and every sibling.  Lifecycle is
    # parent-owned here, so withdraw the registration (py3.13's
    # ``track=False`` parameter, spelled for 3.10-3.12).  Forked
    # workers share the parent's tracker, where the attach-time
    # register was an idempotent set-add: leave it, so the parent's
    # eventual unlink finds its own registration intact.
    if multiprocessing.get_start_method(allow_none=True) == "spawn":
        try:  # pragma: no cover - CPython implementation detail
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    trace = ColumnarTrace.from_buffer(
        ref.trace_name, ref.accesses, segment.buf,
        base_cpi=ref.base_cpi, mlp=ref.mlp, owner=segment,
    )
    _ATTACHMENTS[ref.segment] = (segment, trace)
    return trace


def attach_bindings(share: TraceShare) -> List[BoundTrace]:
    """Rebuild a job's bindings from its manifest (worker side).

    Shared segments are attached zero-copy and cached; inline payloads
    are wrapped in place.  Raises on a vanished segment -- the caller
    falls back to regenerating from the spec.
    """
    bindings = []
    for ref in share.refs:
        if ref.segment is not None:
            trace = _attach_segment(ref)
        else:
            trace = ColumnarTrace.from_buffer(
                ref.trace_name, ref.accesses, ref.payload,
                base_cpi=ref.base_cpi, mlp=ref.mlp, owner=ref.payload,
            )
        bindings.append(BoundTrace(core_id=ref.core_id,
                                   process_id=ref.process_id,
                                   trace=trace))
    return bindings
