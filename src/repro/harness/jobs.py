"""Declarative job specifications: one :class:`JobSpec` per simulation point.

A job spec captures *everything* that determines one ``Simulator.run``
call -- the design name, the workload binding recipe (program/mix name,
trace length, thread count), every config knob the experiment runners
vary, the warmup split, and the RNG base seed.  Because trace generation
is itself deterministic given those inputs (see :mod:`repro.common.rng`),
a spec can be executed in any process, in any order, and always yields
bit-identical metrics.  That property is what lets the runner fan jobs
out to worker processes and the cache replay results across invocations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import time
import traceback
import warnings
from typing import Dict, List, Mapping, Optional, Tuple

import repro
from repro.common import rng
from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.machine import DEFAULT_MACHINE, MachineSpec, build_system
from repro.cpu.batched import ENGINE_MODES
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import SimulationResult, Simulator
from repro.workloads.generator import TraceGenerator
from repro.workloads.mixes import MIXES, mix_traces
from repro.workloads.parsec import PARSEC_PROFILES, parsec_thread_traces
from repro.workloads.spec import SPEC_PROFILES, spec_profile

#: Bump whenever the meaning of a cached result changes (new metrics,
#: different warmup semantics, ...).  Old cache entries then read back
#: with a stale schema and are invalidated instead of silently reused.
SCHEMA_VERSION = 1

#: Recognised workload binding recipes.
WORKLOAD_KINDS = ("spec", "mix", "parsec", "tenants")

#: Memoised :func:`code_fingerprint` value (None = not yet computed).
_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Identify the simulator code that produces results.

    ``<package version>+<git rev>`` when the repository is available
    (``-dirty`` suffix for uncommitted changes), else the package
    version alone.  Folded into every cache key so results cached by one
    version of the simulator are never replayed by another -- config
    knobs alone cannot distinguish two builds whose *code* computes
    different numbers from the same knobs.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        fingerprint = repro.__version__
        try:
            rev = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=5,
            )
            if rev.returncode == 0 and rev.stdout.strip():
                fingerprint = f"{fingerprint}+{rev.stdout.strip()}"
        except (OSError, subprocess.SubprocessError):
            pass  # no git available: the package version must do
        _FINGERPRINT = fingerprint
    return _FINGERPRINT


def infer_workload_kind(workload: str) -> str:
    """Classify a workload name into one of :data:`WORKLOAD_KINDS`."""
    if workload in MIXES:
        return "mix"
    if workload in SPEC_PROFILES:
        return "spec"
    if workload in PARSEC_PROFILES:
        return "parsec"
    raise ConfigurationError(
        f"unknown workload {workload!r}; see `repro workloads`"
    )


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """Everything that determines one simulation point.

    Instances are frozen and hashable so they can serve directly as
    dictionary keys and as the input to the content-addressed result
    cache.  ``workload_kind`` may be left empty and is then inferred
    from the workload name.
    """

    design: str
    workload: str
    workload_kind: str = ""
    accesses: int = 100_000
    cache_megabytes: int = 1024
    num_cores: int = 1
    replacement: str = "fifo"
    capacity_scale: int = 64
    warmup_fraction: float = 0.25
    #: Thread count for parsec workloads (ignored otherwise).
    parsec_threads: int = 4
    #: When set, pages with fewer than this many accesses in the trace
    #: are flagged non-cacheable before the run (the Figure 13 study).
    nc_threshold: Optional[int] = None
    #: RNG base seed; ``None`` means the library default
    #: (:data:`repro.common.rng.BASE_SEED`) in effect at execution time.
    base_seed: Optional[int] = None
    #: Run with the ``repro.validate`` invariant checker installed.
    validate: bool = False
    #: Per-job wall-clock timeout in seconds; ``None`` defers to the
    #: run-level default (``run_jobs(timeout_s=...)``, itself defaulting
    #: to ``$REPRO_JOB_TIMEOUT``).  Excluded from the cache key: how
    #: long a job is *allowed* to run does not change its result.
    timeout_s: Optional[float] = None
    #: Execution engine ("scalar" or "batched"); ``None`` defers to
    #: ``$REPRO_ENGINE``.  Excluded from the cache key like
    #: ``timeout_s``: the engines are bit-identical (the golden oracle
    #: locks this), so the choice is execution policy, not input.
    engine: Optional[str] = None
    #: Machine description beyond the scalar knobs above: a preset plus
    #: validated dotted-path overrides (:mod:`repro.common.machine`).
    #: Accepts a :class:`MachineSpec`, a preset name, a dict form, or
    #: ``None`` (the Table 3 default).  The default spec is excluded
    #: from the cache key so pre-existing keys stay byte-identical.
    machine: MachineSpec = DEFAULT_MACHINE
    #: Path to a multi-tenant scenario JSON
    #: (:class:`repro.workloads.tenants.TenantScenarioSpec`).  Setting it
    #: switches the job to the ``tenants`` workload kind: the scenario
    #: file -- not ``accesses``/``warmup_fraction`` -- describes the
    #: replay.  The cache key folds the file's *content* hash, so
    #: editing a scenario in place invalidates its cached results.
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if self.machine is None:
            object.__setattr__(self, "machine", DEFAULT_MACHINE)
        elif isinstance(self.machine, str):
            object.__setattr__(self, "machine",
                               MachineSpec(preset=self.machine))
        elif isinstance(self.machine, Mapping):
            object.__setattr__(self, "machine",
                               MachineSpec.from_dict(self.machine))
        elif not isinstance(self.machine, MachineSpec):
            raise ConfigurationError(
                f"machine must be a MachineSpec, preset name or mapping,"
                f" got {type(self.machine).__name__}"
            )
        if self.scenario is not None and not self.workload_kind:
            object.__setattr__(self, "workload_kind", "tenants")
        if self.workload_kind == "tenants" and self.scenario is None:
            raise ConfigurationError(
                "workload kind 'tenants' needs a scenario file path"
            )
        if not self.workload_kind:
            object.__setattr__(
                self, "workload_kind", infer_workload_kind(self.workload)
            )
        elif self.workload_kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.workload_kind!r}; "
                f"expected one of {WORKLOAD_KINDS}"
            )
        if self.accesses < 0:
            # Zero is legal: a zero-length run exercises the plumbing
            # and reports all-zero metrics (used by smoke tests).
            raise ConfigurationError("accesses must be >= 0")
        if not (0.0 <= self.warmup_fraction < 1.0):
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if self.engine is not None and self.engine not in ENGINE_MODES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {ENGINE_MODES}"
            )

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Short human-readable identifier for progress lines.

        Non-default machines append the spec's short hash so two sweep
        points differing only in overrides stay distinguishable.
        """
        base = f"{self.design}/{self.workload}@{self.cache_megabytes}MB"
        if self.machine.is_default:
            return base
        return f"{base}#{self.machine.spec_hash()[:6]}"

    @property
    def effective_seed(self) -> int:
        """The RNG base seed this job runs under."""
        return self.base_seed if self.base_seed is not None else rng.BASE_SEED

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        # asdict recurses into MachineSpec with tuple-shaped overrides;
        # replace that with the canonical (sorted-mapping) form so the
        # dict round-trips through JSON and hashes stably.
        data["machine"] = self.machine.to_dict()
        return data

    @staticmethod
    def unknown_keys(data: Mapping[str, object]) -> List[str]:
        """The keys of ``data`` no JobSpec field matches, sorted."""
        known = {f.name for f in dataclasses.fields(JobSpec)}
        return sorted(set(data) - known)

    @classmethod
    def from_dict(cls, data: Dict[str, object],
                  strict: bool = False) -> "JobSpec":
        """Rebuild a spec from its dict form.

        Keys no field matches -- typically a semantic field added by a
        *newer* build of the simulator -- cannot be silently dropped:
        replaying such a row as if it were this build's spec would
        associate results with the wrong job.  ``strict=True`` (the
        ``--resume-strict`` behaviour) refuses with a
        :class:`ConfigurationError`; the default accepts the spec but
        emits a warning naming the dropped keys.
        """
        unknown = cls.unknown_keys(data)
        if unknown:
            if strict:
                raise ConfigurationError(
                    f"JobSpec dict carries unknown field(s) "
                    f"{', '.join(unknown)} (written by a newer build?); "
                    f"refusing to reinterpret it as a different job"
                )
            warnings.warn(
                f"dropping {len(unknown)} unknown JobSpec field(s): "
                f"{', '.join(unknown)} -- the replayed spec may not "
                f"describe the job that produced this record",
                RuntimeWarning,
                stacklevel=2,
            )
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def cache_key(self) -> str:
        """Stable content hash of this spec plus the effective base seed.

        Any change to a config knob, the workload recipe, the warmup
        split, the library base seed, :data:`SCHEMA_VERSION`, or the
        simulator code itself (:func:`code_fingerprint`) yields a
        different key, so stale results can never be replayed.
        """
        payload = self.to_dict()
        # Execution policy, not simulation input: two runs differing
        # only in how long they allow a job to take -- or which of the
        # bit-identical engines runs it -- address the same cached
        # result (and keys stay stable across the fields' introduction).
        payload.pop("timeout_s", None)
        payload.pop("engine", None)
        # The default machine spec resolves to exactly the machine the
        # scalar knobs already describe, so it is excluded -- keys of
        # every pre-machine-spec JobSpec stay byte-identical.  Any
        # non-default preset/override changes the simulated machine and
        # therefore the key.
        if self.machine.is_default:
            payload.pop("machine", None)
        if self.scenario is None:
            # Pre-scenario keys stay byte-identical.
            payload.pop("scenario", None)
        else:
            # Content-address the scenario: the *file path* is identity
            # for humans, but two machines (or two edits) with different
            # contents at the same path must not share results.
            from repro.workloads.tenants import TenantScenarioSpec
            payload["scenario"] = \
                TenantScenarioSpec.from_file(self.scenario).spec_hash()
        payload["base_seed"] = self.effective_seed
        payload["schema"] = SCHEMA_VERSION
        payload["code"] = code_fingerprint()
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    # ------------------------------------------------------------------
    def system_config(self) -> SystemConfig:
        """Build the machine configuration this job simulates.

        The scalar knobs feed :func:`repro.common.config.default_system`
        exactly as before; the machine spec's preset and overrides are
        then resolved on top, giving every one of SystemConfig's ~40
        fields a declarative path into the harness.
        """
        return build_system(
            machine=self.machine,
            cache_megabytes=self.cache_megabytes,
            num_cores=self.num_cores,
            replacement=self.replacement,
            capacity_scale=self.capacity_scale,
        )

    def bindings(self) -> List[BoundTrace]:
        """Generate the per-core trace bindings this spec describes."""
        if self.workload_kind == "tenants":
            raise ConfigurationError(
                "tenant jobs replay a context-switched schedule, not "
                "per-core trace bindings; execute_job handles them"
            )
        if self.workload_kind == "mix":
            traces = mix_traces(
                self.workload,
                accesses_per_program=self.accesses,
                capacity_scale=self.capacity_scale,
            )
            return [
                BoundTrace(core_id=i, process_id=i, trace=trace)
                for i, trace in enumerate(traces)
            ]
        if self.workload_kind == "parsec":
            traces = parsec_thread_traces(
                self.workload,
                num_threads=self.parsec_threads,
                accesses_per_thread=self.accesses,
                capacity_scale=self.capacity_scale,
            )
            # One shared address space: every thread binds to process 0.
            return [
                BoundTrace(core_id=i, process_id=0, trace=trace)
                for i, trace in enumerate(traces)
            ]
        generator = TraceGenerator(
            spec_profile(self.workload), capacity_scale=self.capacity_scale
        )
        return [
            BoundTrace(core_id=0, process_id=0,
                       trace=generator.generate(self.accesses))
        ]


def execute_job(spec: JobSpec, bindings=None) -> SimulationResult:
    """Run one spec to completion and return its simulation result.

    This is the function worker processes call; everything it needs is
    reconstructed from the spec, so no simulator state ever crosses a
    process boundary.  ``bindings`` optionally supplies the traces
    already materialised (the shared-memory dispatch path of
    :mod:`repro.harness.shm`); it must describe exactly what
    ``spec.bindings()`` would generate.
    """
    previous_seed = rng.BASE_SEED
    override = spec.base_seed is not None and spec.base_seed != previous_seed
    if override:
        rng.BASE_SEED = spec.base_seed
    try:
        if spec.workload_kind == "tenants":
            from repro.workloads.tenants import (
                TenantScenarioSpec,
                build_schedule,
            )

            scenario = TenantScenarioSpec.from_file(spec.scenario)
            schedule = build_schedule(
                scenario, num_cores=spec.num_cores,
                base_seed=spec.effective_seed,
            )
            simulator = Simulator(spec.system_config())
            return simulator.run_tenants(
                spec.design,
                schedule,
                validate=spec.validate or None,
            )
        if bindings is None:
            bindings = spec.bindings()
        non_cacheable = None
        if spec.nc_threshold is not None:
            # Accumulate counts per address space: threads of a parsec
            # run share process 0, so their counts must merge before the
            # threshold is applied.
            per_process: Dict[int, Dict[int, int]] = {}
            for binding in bindings:
                counts = per_process.setdefault(binding.process_id, {})
                for page, count in binding.trace.page_access_counts().items():
                    counts[page] = counts.get(page, 0) + count
            non_cacheable = {
                process_id: [
                    page for page, count in counts.items()
                    if count < spec.nc_threshold
                ]
                for process_id, counts in per_process.items()
            }
        simulator = Simulator(spec.system_config())
        return simulator.run(
            spec.design,
            bindings,
            non_cacheable=non_cacheable,
            warmup_fraction=spec.warmup_fraction,
            # False defers to REPRO_VALIDATE; True forces validation on.
            validate=spec.validate or None,
            engine=spec.engine,
        )
    finally:
        if override:
            rng.BASE_SEED = previous_seed


#: How many trailing characters of a failure traceback survive into
#: ``JobResult.error_detail`` and the JSONL artifact row.
TRACEBACK_TAIL_CHARS = 2000


def _traceback_tail() -> str:
    """The tail of the current exception's traceback, bounded in size.

    The *last* frames are the ones that say where a sweep point died;
    keeping only the tail bounds artifact rows even for deeply nested
    failures.
    """
    text = traceback.format_exc().strip()
    if len(text) > TRACEBACK_TAIL_CHARS:
        text = "...\n" + text[-TRACEBACK_TAIL_CHARS:]
    return text


def execute_captured(
    spec: JobSpec, attempt: int = 0, bindings=None,
) -> Tuple[Optional[SimulationResult], Optional[str], Optional[str], float]:
    """Run one spec, trapping any exception into strings.

    Returns ``(result, error, error_detail, wall_time_s)``.  Runs inside
    worker processes, so failures are stringified here -- arbitrary
    exception objects are not reliably picklable -- as a one-line
    ``TypeName: msg`` plus the traceback tail for post-hoc debugging.
    ``attempt`` is the zero-based retry attempt, consumed only by the
    deterministic fault-injection hook (:mod:`repro.harness.faults`);
    ``bindings`` optionally carries pre-materialised traces (see
    :func:`execute_job`).
    """
    from repro.harness.faults import apply_faults

    start = time.perf_counter()
    try:
        apply_faults(spec.label, attempt)
        result = execute_job(spec, bindings=bindings)
        return result, None, None, time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
        error = f"{type(exc).__name__}: {exc}"
        return None, error, _traceback_tail(), time.perf_counter() - start


#: Terminal job statuses a :class:`JobResult` can carry.
JOB_STATUSES = ("ok", "error", "timeout", "worker-crashed")


@dataclasses.dataclass
class JobResult:
    """Outcome of one job: a result, or a captured error, never both."""

    spec: JobSpec
    result: Optional[SimulationResult]
    error: Optional[str] = None
    wall_time_s: float = 0.0
    #: "hit" (served from cache), "miss" (computed, then stored when a
    #: cache is attached), "resume" (seeded from a prior run artifact)
    #: or "off" (no cache in play).
    cache_status: str = "off"
    #: Terminal status: "ok", "error" (the job raised), "timeout" (hit
    #: its wall-clock budget) or "worker-crashed" (its worker process
    #: died).  Derived from ``error`` when not set explicitly.
    status: str = ""
    #: Traceback tail of the failure, when one was captured.
    error_detail: Optional[str] = None
    #: How many retries this job consumed before its terminal attempt.
    retries: int = 0
    #: Trace bytes that crossed the worker pipe by value for this job
    #: (the shared-memory arena's inline fallback; 0 when traces were
    #: regenerated in-worker or served from shared memory).
    trace_bytes_pickled: int = 0
    #: Trace bytes this job consumed from parent-published shared-memory
    #: segments (attachment is zero-copy; the bytes were written once
    #: per recipe, not per job).
    trace_bytes_shared: int = 0

    def __post_init__(self) -> None:
        if not self.status:
            self.status = "ok" if self.error is None else "error"

    @property
    def ok(self) -> bool:
        return self.error is None
