"""Per-bank row-buffer state.

A DRAM row in both devices holds one 4 KB page (Table 4 quotes the
ACT+PRE energy "per 4 KB page"), so the row identifier *is* the page
number and pages map to banks by simple modulo interleaving -- the same
bank-interleaving the paper's BI design relies on.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import DRAMTimingConfig


class BankArray:
    """Open-row bookkeeping for all banks of one DRAM device.

    The array answers a single question for each access: does the target
    page hit the open row buffer of its bank (cheap), land on a precharged
    bank (activate only), or conflict with a different open row (precharge
    then activate)?
    """

    __slots__ = ("timing", "_open_rows", "row_hits", "row_misses", "row_empties")

    def __init__(self, timing: DRAMTimingConfig):
        self.timing = timing
        self._open_rows: Dict[int, int] = {}
        self.row_hits = 0
        self.row_misses = 0
        self.row_empties = 0

    def bank_of_page(self, page_number: int) -> int:
        """Bank index a page maps to (modulo interleaving)."""
        return page_number % self.timing.total_banks

    def open_row(self, bank: int) -> Optional[int]:
        """Page number currently open in ``bank``, or None if precharged."""
        return self._open_rows.get(bank)

    def access(self, page_number: int, num_bytes: int) -> tuple:
        """Record an access to ``page_number`` and return its cost.

        Returns
        -------
        (latency_ns, activations):
            Core-visible latency of the access and the number of
            activate+precharge pairs it incurred (for energy accounting).
        """
        bank = self.bank_of_page(page_number)
        current = self._open_rows.get(bank)
        if current == page_number:
            self.row_hits += 1
            return self.timing.row_hit_ns(num_bytes), 0
        self._open_rows[bank] = page_number
        if current is None:
            self.row_empties += 1
            return self.timing.row_empty_ns(num_bytes), 1
        self.row_misses += 1
        return self.timing.row_miss_ns(num_bytes), 1

    def precharge_all(self) -> None:
        """Close every row (used between independent experiment phases)."""
        self._open_rows.clear()

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses + self.row_empties

    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row buffer."""
        total = self.accesses
        if total == 0:
            return 0.0
        return self.row_hits / total
