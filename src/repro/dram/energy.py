"""Energy bookkeeping for one DRAM device.

Accumulates the Table 4 energy components -- I/O pJ/bit, read/write core
pJ/bit and 15 nJ per 4 KB activate+precharge -- as accesses happen, plus
background power integrated over wall-clock time at the end of a run.
"""

from __future__ import annotations

from repro.common.config import DRAMEnergyConfig


class EnergyAccount:
    """Running total of DRAM energy, in nanojoules."""

    __slots__ = (
        "config",
        "dynamic_nj",
        "read_bytes",
        "write_bytes",
        "activations",
    )

    def __init__(self, config: DRAMEnergyConfig):
        self.config = config
        self.dynamic_nj = 0.0
        self.read_bytes = 0
        self.write_bytes = 0
        self.activations = 0

    def charge(self, num_bytes: int, activations: int, is_write: bool) -> float:
        """Charge one access; returns the nanojoules added."""
        nj = self.config.access_nj(num_bytes, activations)
        self.dynamic_nj += nj
        self.activations += activations
        if is_write:
            self.write_bytes += num_bytes
        else:
            self.read_bytes += num_bytes
        return nj

    def background_nj(self, elapsed_ns: float) -> float:
        """Background (standby + refresh) energy over ``elapsed_ns``.

        watts * ns == nanojoules, which keeps the arithmetic unit-free.
        """
        return self.config.background_watts * elapsed_ns

    def total_nj(self, elapsed_ns: float) -> float:
        """Dynamic plus background energy for a run of ``elapsed_ns``."""
        return self.dynamic_nj + self.background_nj(elapsed_ns)

    def as_dict(self, prefix: str = "") -> dict:
        return {
            f"{prefix}dynamic_nj": self.dynamic_nj,
            f"{prefix}read_bytes": float(self.read_bytes),
            f"{prefix}write_bytes": float(self.write_bytes),
            f"{prefix}activations": float(self.activations),
        }
