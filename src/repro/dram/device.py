"""Facade combining bank, channel and energy models into one DRAM device.

The rest of the simulator talks to DRAM exclusively through two verbs:

- :meth:`DRAMDevice.access_block` -- a demand 64 B read or write (an on-die
  cache miss being serviced);
- :meth:`DRAMDevice.stream_page` -- a 4 KB bulk transfer (cache fill or
  write-back), which is what page-granularity caching turns most
  off-package traffic into.

Both return the core-visible latency in nanoseconds; both may instead be
*asynchronous*, in which case bus time and energy are charged but the
caller observes zero latency (the tagless design's free-queue evictions).
"""

from __future__ import annotations

from repro.common.addressing import CACHE_LINE_BYTES, PAGE_BYTES
from repro.common.config import DRAMEnergyConfig, DRAMTimingConfig
from repro.dram.bank import BankArray
from repro.dram.channel import ChannelScheduler
from repro.dram.energy import EnergyAccount


class DRAMDevice:
    """One DRAM device (in-package or off-package) with full accounting."""

    def __init__(
        self,
        timing: DRAMTimingConfig,
        energy: DRAMEnergyConfig,
    ):
        self.timing = timing
        self.banks = BankArray(timing)
        # Demand may preempt an in-flight background burst after about
        # two cache lines' worth of streaming.
        self.channels = ChannelScheduler(
            timing.channels,
            preemption_ns=2 * timing.transfer_ns(CACHE_LINE_BYTES),
        )
        self.energy = EnergyAccount(energy)
        #: Optional repro.common.stats.Histogram armed by installed
        #: telemetry (repro.obs); None keeps the demand paths at a
        #: single predicate per access.
        self.latency_histogram = None
        self.demand_accesses = 0
        self.demand_latency_ns = 0.0
        self._next_refresh_ns = timing.trefi_ns
        self.refreshes = 0
        # Per-device constants of the closed-page 64 B demand path,
        # hoisted out of access_block (the expressions match the general
        # path exactly, so the floats are identical).
        self._block_transfer_ns = timing.transfer_ns(CACHE_LINE_BYTES)
        self._block_service_ns = (
            timing.row_empty_ns(CACHE_LINE_BYTES) + timing.controller_ns
        )
        self._block_nj = energy.access_nj(CACHE_LINE_BYTES, 1)
        # Full-page transfer time, for the fill/stream paths (footprint
        # fills pass other sizes and take the computed branch).
        self._page_transfer_ns = timing.transfer_ns(PAGE_BYTES)

    def _catch_up_refresh(self, now_ns: float) -> None:
        """Issue every refresh due by ``now_ns`` (tREFI cadence, tRFC
        busy time on every channel).  Idle stretches are jumped over --
        refreshes nobody contends with cost nothing to simulate."""
        if now_ns < self._next_refresh_ns:
            return
        trefi = self.timing.trefi_ns
        trfc = self.timing.trfc_ns
        while self._next_refresh_ns <= now_ns:
            start = self._next_refresh_ns
            for channel in range(self.channels.num_channels):
                self.channels.block(channel, start, trfc)
            self.refreshes += 1
            self._next_refresh_ns += trefi

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def access_block(
        self,
        now_ns: float,
        page_number: int,
        is_write: bool = False,
        open_page: bool = False,
    ) -> float:
        """Service one 64 B demand access; returns its latency in ns.

        Block-granularity demand traffic is modelled with a closed-page
        policy (activate + column access, precharge hidden): with several
        requesters and refresh interleaving their streams, real
        controllers see little row reuse for 64 B traffic -- the very
        observation (Section 2.1) that block-based DRAM caches fail to
        exploit row-buffer locality.  Callers with a genuinely sequential
        pattern (the GIPT, whose header-pointer walk the paper calls out
        as highly local) pass ``open_page=True`` to use the tracked
        row-buffer state instead.
        """
        if now_ns >= self._next_refresh_ns:
            self._catch_up_refresh(now_ns)
        if open_page:
            service_ns, activations = self.banks.access(
                page_number, CACHE_LINE_BYTES
            )
            service_ns += self.timing.controller_ns
            return self._finish_demand(
                now_ns, page_number, CACHE_LINE_BYTES, is_write, service_ns,
                activations,
            )
        # Closed-page fast path: every timing/energy quantity is a
        # per-device constant, and the channel reservation
        # (ChannelScheduler.occupy) is inlined verbatim.
        channels = self.channels
        channel = page_number % channels.num_channels
        free_at = channels._free_at_ns
        start = free_at[channel]
        if start < now_ns:
            start = now_ns
        bg_until = channels._bg_until_ns[channel]
        if bg_until > start:
            start = min(bg_until, start + channels.preemption_ns)
        queue_ns = start - now_ns
        free_at[channel] = start + self._block_transfer_ns
        channels.queue_ns_total += queue_ns
        channels.requests += 1
        channels.demand_busy_ns += self._block_transfer_ns
        energy = self.energy
        energy.dynamic_nj += self._block_nj
        energy.activations += 1
        if is_write:
            energy.write_bytes += CACHE_LINE_BYTES
        else:
            energy.read_bytes += CACHE_LINE_BYTES
        latency = queue_ns + self._block_service_ns
        self.demand_accesses += 1
        self.demand_latency_ns += latency
        histogram = self.latency_histogram
        if histogram is not None:
            histogram.observe(latency)
        return latency

    def posted_write_block(
        self, now_ns: float, page_number: int, open_page: bool = True
    ) -> float:
        """A 64 B write the requester does not wait for (posted store).

        Returns the device service latency -- what the writer pays to
        hand the data to the controller's write buffer -- while the bus
        occupancy is charged in the background.  Used for GIPT updates:
        the paper charges two memory writes per fill but notes the
        header pointer's sequential pattern makes them highly local.
        """
        if open_page:
            service_ns, activations = self.banks.access(
                page_number, CACHE_LINE_BYTES
            )
        else:
            service_ns = self.timing.row_empty_ns(CACHE_LINE_BYTES)
            activations = 1
        channel = self.channels.channel_of_page(page_number)
        self.channels.occupy_background(
            channel, now_ns, self._block_transfer_ns
        )
        self.energy.charge(CACHE_LINE_BYTES, activations, is_write=True)
        return service_ns

    def fill_page(
        self, now_ns: float, page_number: int, num_bytes: int = PAGE_BYTES
    ) -> float:
        """Demand-fill a page (or a predicted footprint of it), critical
        block first.

        The requester waits only for the first 64 B (activate + column
        access); the rest of the transfer streams behind it, occupying
        the channel and burning its energy.  One activation serves the
        whole row -- the row-efficiency argument for page-granularity
        caching.  ``num_bytes`` < 4 KB models footprint-style partial
        fills (extension; see :mod:`repro.core.footprint`).
        """
        if not (CACHE_LINE_BYTES <= num_bytes <= PAGE_BYTES):
            raise ValueError(
                f"fill size {num_bytes} outside [{CACHE_LINE_BYTES}, "
                f"{PAGE_BYTES}]"
            )
        self._catch_up_refresh(now_ns)
        service_ns = self._block_service_ns
        transfer_ns = (self._page_transfer_ns if num_bytes == PAGE_BYTES
                       else self.timing.transfer_ns(num_bytes))
        channel = self.channels.channel_of_page(page_number)
        queue_ns = self.channels.occupy(channel, now_ns, transfer_ns)
        self.energy.charge(num_bytes, 1, is_write=False)
        latency = queue_ns + service_ns
        self.demand_accesses += 1
        self.demand_latency_ns += latency
        histogram = self.latency_histogram
        if histogram is not None:
            histogram.observe(latency)
        return latency

    def stream_page(
        self,
        now_ns: float,
        page_number: int,
        is_write: bool = False,
        asynchronous: bool = False,
        num_bytes: int = PAGE_BYTES,
    ) -> float:
        """Transfer a page -- or part of one -- (write-back or lay-in).

        When ``asynchronous`` is true (the common case: free-queue
        evictions, the in-package half of a fill) the bus and energy are
        charged but 0.0 latency is returned.  The synchronous variant
        waits for the full stream -- used when a caller genuinely cannot
        proceed until the last byte (and by tests).  ``num_bytes`` < 4 KB
        models footprint-limited transfers.
        """
        if not (CACHE_LINE_BYTES <= num_bytes <= PAGE_BYTES):
            raise ValueError(
                f"stream size {num_bytes} outside [{CACHE_LINE_BYTES}, "
                f"{PAGE_BYTES}]"
            )
        self._catch_up_refresh(now_ns)
        transfer_ns = (self._page_transfer_ns if num_bytes == PAGE_BYTES
                       else self.timing.transfer_ns(num_bytes))
        channel = self.channels.channel_of_page(page_number)
        if asynchronous:
            self.channels.occupy_background(channel, now_ns, transfer_ns)
            self.energy.charge(num_bytes, 1, is_write)
            return 0.0
        service_ns = self.timing.row_empty_ns(num_bytes)
        queue_ns = self.channels.occupy(channel, now_ns, transfer_ns)
        self.energy.charge(num_bytes, 1, is_write)
        latency = queue_ns + service_ns
        self.demand_accesses += 1
        self.demand_latency_ns += latency
        histogram = self.latency_histogram
        if histogram is not None:
            histogram.observe(latency)
        return latency

    def _finish_demand(
        self,
        now_ns: float,
        page_number: int,
        num_bytes: int,
        is_write: bool,
        service_ns: float,
        activations: int,
    ) -> float:
        transfer_ns = self.timing.transfer_ns(num_bytes)
        channel = self.channels.channel_of_page(page_number)
        queue_ns = self.channels.occupy(channel, now_ns, transfer_ns)
        self.energy.charge(num_bytes, activations, is_write)
        latency = queue_ns + service_ns
        self.demand_accesses += 1
        self.demand_latency_ns += latency
        histogram = self.latency_histogram
        if histogram is not None:
            histogram.observe(latency)
        return latency

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def mean_demand_latency_ns(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_latency_ns / self.demand_accesses

    def stats(self, prefix: str = "") -> dict:
        """Flat statistics dictionary for the experiment harness."""
        out = {
            f"{prefix}demand_accesses": float(self.demand_accesses),
            f"{prefix}demand_latency_ns": self.demand_latency_ns,
            f"{prefix}row_hits": float(self.banks.row_hits),
            f"{prefix}row_misses": float(self.banks.row_misses),
            f"{prefix}row_empties": float(self.banks.row_empties),
            f"{prefix}queue_ns_total": self.channels.queue_ns_total,
            f"{prefix}refreshes": float(self.refreshes),
        }
        out.update(self.energy.as_dict(prefix))
        return out

    def reset(self) -> None:
        """Clear all state and statistics (fresh device)."""
        self.banks = BankArray(self.timing)
        self.channels.reset()
        self.energy = EnergyAccount(self.energy.config)
        self.demand_accesses = 0
        self.demand_latency_ns = 0.0
        self._next_refresh_ns = self.timing.trefi_ns
        self.refreshes = 0

    def reset_stats(self) -> None:
        """Zero counters but keep warm state (open rows survive).

        Used at the warmup/measurement boundary: the simulation clock
        restarts at zero, so channel reservations are cleared too.
        """
        self.banks.row_hits = 0
        self.banks.row_misses = 0
        self.banks.row_empties = 0
        self.channels.reset()
        self.energy = EnergyAccount(self.energy.config)
        self.demand_accesses = 0
        self.demand_latency_ns = 0.0
        self._next_refresh_ns = self.timing.trefi_ns
        self.refreshes = 0
