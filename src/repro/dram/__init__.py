"""DRAM device models (timing, banks, channel contention, energy).

Two instances of :class:`repro.dram.device.DRAMDevice` exist in every
simulated machine: the fast, wide **in-package** die-stacked DRAM and the
slower, narrower **off-package** DDR3 device (Tables 3 and 4 of the paper).
The device model tracks per-bank open rows (row-buffer locality is a large
part of why page-granularity caching wins) and per-channel data-bus
occupancy (bandwidth contention is what separates the designs once four
cores share one channel).
"""

from repro.dram.bank import BankArray
from repro.dram.channel import ChannelScheduler
from repro.dram.device import DRAMDevice
from repro.dram.energy import EnergyAccount

__all__ = ["BankArray", "ChannelScheduler", "DRAMDevice", "EnergyAccount"]
