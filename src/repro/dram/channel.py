"""Data-bus occupancy model for one DRAM channel.

The simulator approximates queuing delay with a per-channel
*next-free-time*: each demand transfer occupies the bus for its streaming
time, and a demand request arriving while the bus is busy waits until it
frees up.  This first-order model is what reproduces the paper's
multi-programmed results -- four cores hammering one 12.8 GB/s
off-package channel queue heavily, while DRAM-cache hits ride the
51.2 GB/s in-package channel.

Background traffic -- free-queue write-backs, cache lay-ins, posted
stores -- is handled the way real memory controllers handle writes:
**demand has priority**.  Background transfers are buffered and drained
in idle slots, so a demand request is delayed by at most one in-flight
background burst (the preemption window), not by the whole backlog.
Background bandwidth and energy are still fully accounted, so a design
that over-fetches (the page-based over-fetching problem of Section 2.1)
still pays for it wherever *demand* transfers share the same bus --
which is exactly how its cost manifests on real hardware.
"""

from __future__ import annotations


class ChannelScheduler:
    """Tracks when each channel's data bus next becomes free."""

    __slots__ = (
        "num_channels",
        "preemption_ns",
        "_free_at_ns",
        "_bg_until_ns",
        "queue_ns_total",
        "requests",
        "demand_busy_ns",
        "background_busy_ns",
    )

    def __init__(self, num_channels: int, preemption_ns: float = 0.0):
        if num_channels <= 0:
            raise ValueError("a DRAM device needs at least one channel")
        self.num_channels = num_channels
        #: Longest time a demand request can be delayed by in-flight
        #: background traffic (one burst; the controller preempts after).
        self.preemption_ns = preemption_ns
        self._free_at_ns = [0.0] * num_channels
        self._bg_until_ns = [0.0] * num_channels
        self.queue_ns_total = 0.0
        self.requests = 0
        self.demand_busy_ns = 0.0
        self.background_busy_ns = 0.0

    def channel_of_page(self, page_number: int) -> int:
        """Channel a page maps to (pages interleave across channels)."""
        return page_number % self.num_channels

    def occupy(self, channel: int, now_ns: float, busy_ns: float) -> float:
        """Reserve the bus for a demand transfer; returns queuing delay.

        The request starts when the requester is ready, all earlier
        demand transfers have drained, and any in-flight background
        burst has been preempted (bounded by ``preemption_ns``).
        """
        start = self._free_at_ns[channel]
        if start < now_ns:
            start = now_ns
        bg_until = self._bg_until_ns[channel]
        if bg_until > start:
            start = min(bg_until, start + self.preemption_ns)
        queue_ns = start - now_ns
        self._free_at_ns[channel] = start + busy_ns
        self.queue_ns_total += queue_ns
        self.requests += 1
        self.demand_busy_ns += busy_ns
        return queue_ns

    def block(self, channel: int, start_ns: float, busy_ns: float) -> None:
        """Make the channel unconditionally busy (refresh): demand and
        background alike wait it out.  Not counted as a request."""
        begin = max(start_ns, self._free_at_ns[channel])
        self._free_at_ns[channel] = begin + busy_ns

    def occupy_background(self, channel: int, now_ns: float, busy_ns: float) -> None:
        """Buffer bus time for traffic nobody waits on (write-backs,
        lay-ins).  Drains behind demand traffic; delays demand by at most
        the preemption window."""
        start = max(
            now_ns, self._bg_until_ns[channel], self._free_at_ns[channel]
        )
        self._bg_until_ns[channel] = start + busy_ns
        self.background_busy_ns += busy_ns

    def free_at(self, channel: int) -> float:
        return self._free_at_ns[channel]

    def background_until(self, channel: int) -> float:
        return self._bg_until_ns[channel]

    def mean_queue_ns(self) -> float:
        """Average queuing delay per demand request."""
        if self.requests == 0:
            return 0.0
        return self.queue_ns_total / self.requests

    def reset(self) -> None:
        self._free_at_ns = [0.0] * self.num_channels
        self._bg_until_ns = [0.0] * self.num_channels
        self.queue_ns_total = 0.0
        self.requests = 0
        self.demand_busy_ns = 0.0
        self.background_busy_ns = 0.0
