"""Exception hierarchy for the reproduction library.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so callers can catch one type at the library boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied.

    Raised during construction/validation of the dataclasses in
    :mod:`repro.common.config` (for example a cache whose capacity is not a
    multiple of its page size) so that misconfiguration fails fast instead
    of producing silently wrong simulation results.
    """


class SimulationError(ReproError):
    """An invariant of the simulated machine was violated at run time.

    These indicate bugs in the simulator (e.g. a cTLB entry pointing at a
    cache block the GIPT does not know about), never user error.
    """


class TraceError(ReproError):
    """A memory-access trace is malformed or internally inconsistent."""
