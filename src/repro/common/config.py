"""Machine configuration presets transcribed from the paper.

Tables reproduced here:

- **Table 3** (architectural parameters): 4 out-of-order cores at 3 GHz,
  32-entry L1 TLBs and 512-entry L2 TLBs per core, 32 KB L1 / 2 MB L2
  caches, a 1 GB in-package DRAM (1 channel, 2 ranks, 16 banks/rank,
  128-bit bus at 1.6 GHz DDR) and an 8 GB off-package DRAM (1 channel,
  2 ranks, 64 banks/rank, 64-bit bus at 800 MHz DDR).
- **Table 4** (DRAM timing and energy): tRCD/tAA/tRAS/tRP and the pJ/bit
  and nJ/activation energies for both devices.
- **Table 6** (SRAM tag array): tag size and access latency as a function
  of DRAM cache size, from CACTI 6.5.

Because the simulator is pure Python, capacities can be *scaled down*
uniformly (see :attr:`SystemConfig.capacity_scale`): the DRAM cache and
workload footprints shrink by the same factor so that the ratios that
determine hit rates and contention are preserved, while traces stay short
enough to simulate in seconds.  On-die caches and TLBs use a separate,
milder scale (:attr:`SystemConfig.ondie_scale`, :attr:`SystemConfig.tlb_scale`)
so they keep a realistic relationship to burst-level locality.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Tuple

from repro.common.addressing import (
    BYTES_PER_GB,
    BYTES_PER_KB,
    BYTES_PER_MB,
    CACHE_LINE_BYTES,
    PAGE_BYTES,
)
from repro.common.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class CoreConfig:
    """Timing parameters of one out-of-order core (Table 3, top)."""

    frequency_ghz: float = 3.0
    #: Base cycles-per-instruction of the core when no memory stalls occur.
    #: Individual workloads override this (pointer-chasing codes have a
    #: higher base CPI than streaming codes).
    base_cpi: float = 0.5
    #: Memory-level-parallelism divisor: overlapping outstanding misses
    #: means only ``latency / mlp`` cycles of a miss stall the core.
    mlp: float = 2.0
    #: Core timing model: "mlp" (the default divisor model every figure
    #: is calibrated with) or "window" (a Karkhanis/Smith-style interval
    #: model where the ROB hides latency and overlapping misses share
    #: one stall shadow).
    model: str = "mlp"
    #: Effective reorder-buffer depth for the "window" model.  This is
    #: the *dependency-limited* useful window, not the architectural ROB
    #: size: with a very large value the model hides the entire
    #: common-case L3 latency on every access, which real dependent
    #: instruction streams cannot do.
    rob_entries: int = 96

    def __post_init__(self) -> None:
        if self.model not in ("mlp", "window"):
            raise ConfigurationError(
                f"unknown core model {self.model!r}; "
                "expected 'mlp' or 'window'"
            )
        if self.frequency_ghz <= 0:
            raise ConfigurationError("frequency_ghz must be positive")
        if self.rob_entries < 1:
            raise ConfigurationError("rob_entries must be >= 1")

    def cycles_from_ns(self, ns: float) -> float:
        """Convert a nanosecond latency into core clock cycles."""
        return ns * self.frequency_ghz

    def ns_from_cycles(self, cycles: float) -> float:
        return cycles / self.frequency_ghz


@dataclasses.dataclass(frozen=True)
class TLBConfig:
    """Per-core TLB hierarchy (Table 3): 32-entry L1, 512-entry L2."""

    l1_entries: int = 32
    l2_entries: int = 512
    #: Extra cycles to probe the L2 TLB after an L1 TLB miss.
    l2_hit_cycles: int = 7
    #: Cycles for a full page-table walk (both designs pay this on a
    #: complete TLB miss; the cTLB handler *adds* fill/GIPT costs on top).
    walk_cycles: int = 60
    #: One-time cost of splitting a superpage into 4 KB PTEs
    #: (Section 6: expanding one superpage entry into next-level page
    #: tables): a fixed part plus one PTE write per created page.
    superpage_split_base_cycles: float = 40.0
    superpage_split_cycles_per_page: float = 1.0

    def __post_init__(self) -> None:
        if self.l1_entries <= 0 or self.l2_entries < self.l1_entries:
            raise ConfigurationError(
                "TLB sizes must satisfy 0 < l1_entries <= l2_entries, got "
                f"l1={self.l1_entries} l2={self.l2_entries}"
            )


@dataclasses.dataclass(frozen=True)
class OnDieCacheConfig:
    """One on-die SRAM cache level (L1 or L2 of Table 3)."""

    capacity_bytes: int
    associativity: int
    line_bytes: int = CACHE_LINE_BYTES
    #: Access latency of a hit in this level, core cycles.  This is the
    #: *authoritative* source the timing models read (the hot paths of
    #: :mod:`repro.designs.base` and :mod:`repro.cpu.batched`, and the
    #: L1-pipelining threshold of :mod:`repro.cpu.core_model`).
    hit_cycles: int = 2

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ConfigurationError(
                f"cache capacity {self.capacity_bytes} is not divisible by "
                f"line_bytes*associativity = "
                f"{self.line_bytes * self.associativity}"
            )
        if self.hit_cycles < 1:
            raise ConfigurationError("hit_cycles must be >= 1")

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclasses.dataclass(frozen=True)
class DRAMTimingConfig:
    """DRAM device timing (Table 4) and channel geometry (Table 3)."""

    name: str
    trcd_ns: float
    taa_ns: float
    tras_ns: float
    trp_ns: float
    #: DDR transfer rate in giga-transfers per second (2x bus frequency).
    transfers_per_ns: float
    bus_bytes: int
    channels: int = 1
    ranks: int = 2
    banks_per_rank: int = 16
    #: Fixed memory-controller + PHY latency added to every demand
    #: access: command queuing, arbitration and (off-package) the board
    #: trace/PHY crossing.  In-package TSV channels cross no board, so
    #: their constant is much smaller -- part of why die-stacked DRAM
    #: has lower *latency* and not just higher bandwidth.
    controller_ns: float = 4.0
    #: Refresh cadence and duration (tREFI / tRFC): every ``trefi_ns``
    #: the channel goes unconditionally busy for ``trfc_ns``.  Standard
    #: DDR3 values; per-bank refresh on stacked parts shortens tRFC.
    trefi_ns: float = 7800.0
    trfc_ns: float = 350.0

    @property
    def bytes_per_ns(self) -> float:
        """Peak channel bandwidth in bytes per nanosecond."""
        return self.transfers_per_ns * self.bus_bytes

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks * self.banks_per_rank

    def transfer_ns(self, num_bytes: int) -> float:
        """Time to stream ``num_bytes`` over the data bus."""
        return num_bytes / self.bytes_per_ns

    def row_hit_ns(self, num_bytes: int) -> float:
        """Latency of an access that hits the open row buffer."""
        return self.taa_ns + self.transfer_ns(num_bytes)

    def row_miss_ns(self, num_bytes: int) -> float:
        """Latency of an access that must precharge and activate first."""
        return self.trp_ns + self.trcd_ns + self.taa_ns + self.transfer_ns(num_bytes)

    def row_empty_ns(self, num_bytes: int) -> float:
        """Latency when the bank is precharged (activate, no precharge)."""
        return self.trcd_ns + self.taa_ns + self.transfer_ns(num_bytes)


@dataclasses.dataclass(frozen=True)
class DRAMEnergyConfig:
    """DRAM access energies (Table 4)."""

    io_pj_per_bit: float
    rw_pj_per_bit: float
    act_pre_nj: float
    #: Background (standby/refresh) power of the whole device, watts.
    background_watts: float = 0.5

    def access_nj(self, num_bytes: int, activations: int = 0) -> float:
        """Energy of moving ``num_bytes`` on/off the device in nanojoules."""
        bits = num_bytes * 8
        per_bit = (self.io_pj_per_bit + self.rw_pj_per_bit) * bits / 1000.0
        return per_bit + activations * self.act_pre_nj


#: Smallest scaled DRAM-cache size (pages) the simulator accepts.
#: Below this, burst locality no longer resembles the full-size machine
#: and distinct nominal configurations would collapse onto one model.
MIN_CACHE_PAGES = 16


#: Table 6 of the paper: DRAM cache size -> (tag SRAM MB, access cycles).
TAG_ARRAY_TABLE: Dict[int, Tuple[float, int]] = {
    128 * BYTES_PER_MB: (0.5, 5),
    256 * BYTES_PER_MB: (1.0, 6),
    512 * BYTES_PER_MB: (2.0, 9),
    1024 * BYTES_PER_MB: (4.0, 11),
}


def tag_array_parameters(cache_bytes: int) -> Tuple[float, int]:
    """Return (tag SRAM megabytes, access latency cycles) for a cache size.

    Exact sizes come straight from Table 6; other sizes interpolate the
    table linearly in log2(size), mirroring how CACTI latency grows with
    SRAM capacity.
    """
    if cache_bytes in TAG_ARRAY_TABLE:
        return TAG_ARRAY_TABLE[cache_bytes]
    sizes = sorted(TAG_ARRAY_TABLE)
    if cache_bytes < sizes[0]:
        mb, cyc = TAG_ARRAY_TABLE[sizes[0]]
        ratio = cache_bytes / sizes[0]
        return (mb * ratio, max(1, round(cyc + math.log2(ratio))))
    if cache_bytes > sizes[-1]:
        mb, cyc = TAG_ARRAY_TABLE[sizes[-1]]
        ratio = cache_bytes / sizes[-1]
        return (mb * ratio, round(cyc + 2 * math.log2(ratio)))
    lo = max(s for s in sizes if s <= cache_bytes)
    hi = min(s for s in sizes if s >= cache_bytes)
    frac = math.log2(cache_bytes / lo) / math.log2(hi / lo)
    lo_mb, lo_cyc = TAG_ARRAY_TABLE[lo]
    hi_mb, hi_cyc = TAG_ARRAY_TABLE[hi]
    mb = lo_mb + (hi_mb - lo_mb) * frac
    cycles = round(lo_cyc + (hi_cyc - lo_cyc) * frac)
    return (mb, cycles)


@dataclasses.dataclass(frozen=True)
class SRAMTagConfig:
    """On-die SRAM tag array for the SRAM-tag baseline (16-way, Table 3/6)."""

    cache_bytes: int
    associativity: int = 16
    #: Dynamic energy of one tag probe, nanojoules.  Grows mildly with the
    #: array size (CACTI-style); the constant matters only relative to the
    #: DRAM access energies of Table 4.
    base_probe_nj: float = 0.2
    probe_nj_per_mb: float = 0.1
    #: Leakage power per megabyte of tag SRAM, watts.
    leakage_watts_per_mb: float = 0.25

    @property
    def tag_megabytes(self) -> float:
        return tag_array_parameters(self.cache_bytes)[0]

    @property
    def access_cycles(self) -> int:
        return tag_array_parameters(self.cache_bytes)[1]

    @property
    def probe_nj(self) -> float:
        return self.base_probe_nj + self.probe_nj_per_mb * self.tag_megabytes

    @property
    def leakage_watts(self) -> float:
        return self.leakage_watts_per_mb * self.tag_megabytes


@dataclasses.dataclass(frozen=True)
class DRAMCacheConfig:
    """The in-package DRAM cache itself (capacity, replacement, alpha)."""

    nominal_capacity_bytes: int = BYTES_PER_GB
    page_bytes: int = PAGE_BYTES
    #: Number of free blocks the tagless design keeps available so that a
    #: cache fill never waits for an eviction (the paper uses alpha = 1).
    alpha: int = 1
    #: Victim-selection policy for the tagless design: "fifo" (default,
    #: paper Section 3.2), "lru" (Figure 11 sensitivity study) or
    #: "clock" (the LRU approximation Section 5.2 alludes to).
    replacement: str = "fifo"
    #: Where the GIPT lives.  Section 3.2: "can be placed in either
    #: in-package or off-package DRAM"; the ablation benchmark flips it.
    gipt_in_package: bool = False
    #: Footprint-style partial fills (extension; the paper cites
    #: footprint caching [21] as the complementary over-fetch fix).
    footprint_caching: bool = False
    #: What the cTLB miss handler does with an unsplit superpage
    #: (Sections 3.5/6): "split" it into cacheable 4 KB pages, or pin
    #: the whole run "nc" when its locality does not justify caching.
    superpage_handling: str = "split"

    def __post_init__(self) -> None:
        if self.replacement not in ("fifo", "lru", "clock"):
            raise ConfigurationError(
                f"unknown replacement policy {self.replacement!r}; "
                "expected 'fifo', 'lru' or 'clock'"
            )
        if self.superpage_handling not in ("split", "nc"):
            raise ConfigurationError(
                f"unknown superpage handling {self.superpage_handling!r}; "
                "expected 'split' or 'nc'"
            )
        if self.alpha < 1:
            raise ConfigurationError("alpha must be >= 1")
        if self.nominal_capacity_bytes % self.page_bytes:
            raise ConfigurationError(
                "cache capacity must be a whole number of pages"
            )

    @property
    def nominal_pages(self) -> int:
        return self.nominal_capacity_bytes // self.page_bytes


@dataclasses.dataclass(frozen=True)
class EnergyModelConfig:
    """Non-DRAM power constants used for the EDP metric.

    The paper extracts core/cache power from McPAT; here we use round
    figures of the same magnitude.  Only *relative* EDP matters for the
    reproduced figures, and those are dominated by execution time and by
    the DRAM + tag-array energies of Table 4 / Table 6.
    """

    core_active_watts: float = 5.0
    core_idle_watts: float = 1.0
    l2_leakage_watts_per_mb: float = 0.2
    #: Dynamic energy of one on-die cache access (L1 or L2), nanojoules.
    ondie_access_nj: float = 0.05


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated machine configuration."""

    core: CoreConfig = CoreConfig()
    tlb: TLBConfig = TLBConfig()
    l1: OnDieCacheConfig = OnDieCacheConfig(
        capacity_bytes=32 * BYTES_PER_KB, associativity=4, hit_cycles=2
    )
    l2: OnDieCacheConfig = OnDieCacheConfig(
        capacity_bytes=2 * BYTES_PER_MB, associativity=16, hit_cycles=6
    )
    in_package: DRAMTimingConfig = DRAMTimingConfig(
        name="in-package",
        trcd_ns=8.0,
        taa_ns=10.0,
        tras_ns=22.0,
        trp_ns=14.0,
        transfers_per_ns=3.2,
        bus_bytes=16,
        channels=1,
        ranks=2,
        banks_per_rank=16,
        trfc_ns=260.0,
    )
    off_package: DRAMTimingConfig = DRAMTimingConfig(
        name="off-package",
        trcd_ns=14.0,
        taa_ns=14.0,
        tras_ns=35.0,
        trp_ns=14.0,
        transfers_per_ns=1.6,
        bus_bytes=8,
        channels=1,
        ranks=2,
        banks_per_rank=64,
        controller_ns=14.0,
    )
    in_package_energy: DRAMEnergyConfig = DRAMEnergyConfig(
        io_pj_per_bit=2.4, rw_pj_per_bit=4.0, act_pre_nj=15.0,
        background_watts=0.6,
    )
    off_package_energy: DRAMEnergyConfig = DRAMEnergyConfig(
        io_pj_per_bit=20.0, rw_pj_per_bit=13.0, act_pre_nj=15.0,
        background_watts=1.2,
    )
    dram_cache: DRAMCacheConfig = DRAMCacheConfig()
    energy: EnergyModelConfig = EnergyModelConfig()
    num_cores: int = 4
    off_package_bytes: int = 8 * BYTES_PER_GB
    #: Scale factor applied to the DRAM cache capacity and (by the
    #: workload layer) to footprints so pure-Python simulation is fast.
    capacity_scale: int = 64
    #: Scale factor for on-die cache capacities.
    ondie_scale: int = 8
    #: Scale factor for L2 TLB entries (the L1 TLB keeps its 32 entries).
    tlb_scale: int = 8

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("num_cores must be >= 1")
        if (self.capacity_scale < 1 or self.ondie_scale < 1
                or self.tlb_scale < 1):
            raise ConfigurationError(
                "capacity_scale, ondie_scale and tlb_scale must be >= 1"
            )
        # Refuse configurations where the scaled structures would have
        # to be clamped to stay simulable.  A silent floor (the old
        # ``max(16, pages)``) let two sweep points with different
        # ``cache_megabytes``/``capacity_scale`` simulate the *same*
        # machine while being reported -- and cached -- as distinct
        # results.
        pages = self.dram_cache.nominal_capacity_bytes // (
            self.dram_cache.page_bytes * self.capacity_scale
        )
        if pages < MIN_CACHE_PAGES:
            raise ConfigurationError(
                f"capacity_scale={self.capacity_scale} shrinks the "
                f"{self.dram_cache.nominal_capacity_bytes // BYTES_PER_MB}"
                f" MB DRAM cache to {pages} pages, below the "
                f"{MIN_CACHE_PAGES}-page simulation floor; lower "
                f"capacity_scale or enlarge the cache so distinct sweep "
                f"points describe distinct machines"
            )
        off_pages = self.off_package_bytes // (
            PAGE_BYTES * self.capacity_scale
        )
        if off_pages < pages * 2:
            raise ConfigurationError(
                f"off-package DRAM scales to {off_pages} pages, fewer "
                f"than twice the {pages}-page DRAM cache; enlarge "
                f"off_package_bytes or shrink the cache (the workloads "
                f"assume backing memory strictly larger than the cache)"
            )

    # ------------------------------------------------------------------
    # Scaled views used by the simulator
    # ------------------------------------------------------------------
    @property
    def cache_pages(self) -> int:
        """DRAM-cache capacity in pages after applying capacity_scale.

        Construction-time validation guarantees the result is at least
        :data:`MIN_CACHE_PAGES` -- no silent clamping happens here.
        """
        return self.dram_cache.nominal_capacity_bytes // (
            self.dram_cache.page_bytes * self.capacity_scale
        )

    @property
    def off_package_pages(self) -> int:
        """Off-package DRAM capacity in pages after scaling (>= 2x cache)."""
        return self.off_package_bytes // (PAGE_BYTES * self.capacity_scale)

    @property
    def scaled_l1(self) -> OnDieCacheConfig:
        return _scale_ondie(self.l1, self.ondie_scale)

    @property
    def scaled_l2(self) -> OnDieCacheConfig:
        return _scale_ondie(self.l2, self.ondie_scale)

    @property
    def scaled_tlb(self) -> TLBConfig:
        l2_entries = max(self.tlb.l1_entries, self.tlb.l2_entries // self.tlb_scale)
        return dataclasses.replace(self.tlb, l2_entries=l2_entries)

    @property
    def sram_tag(self) -> SRAMTagConfig:
        """Tag-array model sized for the *nominal* cache capacity.

        Latency/energy of the tag array depend on the real (unscaled)
        cache size -- an 11-cycle probe for 1 GB per Table 6 -- so the
        nominal capacity is the right input even in scaled simulations.
        """
        return SRAMTagConfig(
            cache_bytes=self.dram_cache.nominal_capacity_bytes,
            associativity=self.l2.associativity,
        )

    def with_cache_capacity(self, nominal_bytes: int) -> "SystemConfig":
        """Return a copy with a different nominal DRAM-cache capacity."""
        return dataclasses.replace(
            self,
            dram_cache=dataclasses.replace(
                self.dram_cache, nominal_capacity_bytes=nominal_bytes
            ),
        )

    def with_replacement(self, policy: str) -> "SystemConfig":
        """Return a copy using a different tagless victim policy."""
        return dataclasses.replace(
            self,
            dram_cache=dataclasses.replace(self.dram_cache, replacement=policy),
        )


def _scale_ondie(cfg: OnDieCacheConfig, scale: int) -> OnDieCacheConfig:
    """Shrink an on-die cache while keeping geometry valid."""
    floor = cfg.line_bytes * cfg.associativity
    capacity = max(floor, cfg.capacity_bytes // scale)
    capacity -= capacity % floor
    return dataclasses.replace(cfg, capacity_bytes=capacity)


def default_system(
    cache_megabytes: int = 1024,
    num_cores: int = 4,
    replacement: str = "fifo",
    capacity_scale: int = 64,
) -> SystemConfig:
    """Build the paper's Table 3 machine, optionally resized.

    Parameters
    ----------
    cache_megabytes:
        Nominal in-package DRAM cache capacity (Figure 10 sweeps 256,
        512 and 1024).
    num_cores:
        Active cores (1 for single-programmed runs, 4 otherwise).
    replacement:
        Tagless victim policy: ``"fifo"`` (default), ``"lru"``
        (Figure 11) or ``"clock"`` (the Section 5.2 approximation).
    capacity_scale:
        Uniform shrink factor for cache capacity and footprints.
    """
    return SystemConfig(
        dram_cache=DRAMCacheConfig(
            nominal_capacity_bytes=cache_megabytes * BYTES_PER_MB,
            replacement=replacement,
        ),
        num_cores=num_cores,
        capacity_scale=capacity_scale,
    )
