"""Declarative machine specifications: preset + validated overrides.

Every knob of :class:`~repro.common.config.SystemConfig` -- ~40 fields
spread over nested dataclasses -- is addressable here by a *dotted
path* (``"dram_cache.gipt_in_package"``, ``"core.model"``,
``"tlb.walk_cycles"``).  A :class:`MachineSpec` names a preset plus a
mapping of such overrides, and is the single way the harness, the
campaign compiler and the CLI describe a non-default machine:

- **validated**: unknown paths, wrong value types, and paths owned by
  the job layer (:data:`FROZEN_PATHS`) are rejected at construction,
  not at simulation time;
- **serializable**: round-trips through JSON (and TOML study files)
  via :meth:`MachineSpec.to_dict` / :meth:`MachineSpec.from_dict`;
- **stable**: overrides are canonicalised (sorted, type-coerced) so
  :meth:`MachineSpec.spec_hash` -- and therefore the harness cache key
  it folds into -- never depends on key order or ``1`` vs ``1.0``;
- **composable**: a preset is itself just a named override bundle, and
  user overrides layer on top of it.

The default spec (``MachineSpec()``) resolves to *exactly* the machine
:func:`repro.common.config.default_system` builds, which is what keeps
pre-existing cache keys and golden statistics byte-identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

try:  # Python >= 3.11; JSON machine files keep 3.10 fully supported.
    import tomllib
except ImportError:  # pragma: no cover - exercised on py3.10 CI only
    tomllib = None

from repro.common.config import SystemConfig, default_system
from repro.common.errors import ConfigurationError

#: Named machine presets: each is an override bundle layered onto the
#: Table 3 defaults.  ``"table3"`` is the paper machine itself.
PRESETS: Dict[str, Mapping[str, object]] = {
    "table3": {},
    #: Karkhanis/Smith-style interval core instead of the MLP divisor.
    "window-core": {"core.model": "window"},
    #: Section 3.2 ablation: the GIPT lives in the in-package DRAM.
    "gipt-in-package": {"dram_cache.gipt_in_package": True},
}

#: Default preset name (the paper's Table 3 machine).
DEFAULT_PRESET = "table3"

#: Dotted paths a machine spec may *not* override, and why:
#: the first four are owned by the job/factor layer (``JobSpec``'s
#: ``cache_megabytes``/``replacement``/``num_cores``/``capacity_scale``
#: fields -- overriding them here would let one sweep point describe
#: two different machines); the last three are welded to module-level
#: address-geometry constants (``PAGE_BYTES``, ``CACHE_LINE_BYTES``,
#: ``LINES_PER_PAGE``) that a config override cannot reach.
FROZEN_PATHS: Dict[str, str] = {
    "dram_cache.nominal_capacity_bytes":
        "owned by JobSpec.cache_megabytes / the cache_mb factor",
    "dram_cache.replacement":
        "owned by JobSpec.replacement / the replacement factor",
    "num_cores": "owned by JobSpec.num_cores / the cores factor",
    "capacity_scale": "owned by JobSpec.capacity_scale / the scale factor",
    "dram_cache.page_bytes":
        "welded to the PAGE_BYTES addressing constant",
    "l1.line_bytes": "welded to the CACHE_LINE_BYTES addressing constant",
    "l2.line_bytes": "welded to the CACHE_LINE_BYTES addressing constant",
}

#: Template used for path/type validation (never mutated).
_TEMPLATE = SystemConfig()


def iter_override_paths() -> Iterable[str]:
    """Yield every legal dotted override path, sorted (docs and errors)."""
    paths = []

    def _walk(node: object, prefix: str) -> None:
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            path = f"{prefix}{field.name}"
            if dataclasses.is_dataclass(value):
                _walk(value, f"{path}.")
            elif path not in FROZEN_PATHS:
                paths.append(path)

    _walk(_TEMPLATE, "")
    return sorted(paths)


def _default_at(path: str) -> object:
    """The template's value at ``path``; raises on unknown paths."""
    node: object = _TEMPLATE
    parts = path.split(".")
    for index, part in enumerate(parts):
        if not dataclasses.is_dataclass(node):
            parent = ".".join(parts[:index])
            raise ConfigurationError(
                f"bad override path {path!r}: {parent!r} is a value, "
                f"not a config section"
            )
        names = {field.name for field in dataclasses.fields(node)}
        if part not in names:
            parent = ".".join(parts[:index]) or "the machine config"
            raise ConfigurationError(
                f"unknown override path {path!r}: {parent} has no field "
                f"{part!r} (fields: {', '.join(sorted(names))})"
            )
        node = getattr(node, part)
    if dataclasses.is_dataclass(node):
        sub = ", ".join(f"{path}.{f.name}"
                        for f in dataclasses.fields(node))
        raise ConfigurationError(
            f"{path!r} names a config section, not a value; override "
            f"one of its fields instead ({sub})"
        )
    return node


def coerce_override(path: str, value: object) -> object:
    """Validate ``path`` and coerce ``value`` to the field's type.

    Types are inferred from the Table 3 template: bool fields require
    bools (ints are *not* accepted -- ``1`` for ``gipt_in_package`` is
    almost always a typo), int fields require ints, float fields accept
    ints and canonicalise them to float so hashing is stable, string
    fields require strings.  Frozen paths are rejected with the reason.
    """
    reason = FROZEN_PATHS.get(path)
    if reason is not None:
        raise ConfigurationError(
            f"override path {path!r} is frozen: {reason}"
        )
    default = _default_at(path)
    if isinstance(default, bool):
        if isinstance(value, bool):
            return value
        raise ConfigurationError(
            f"override {path!r} expects a bool, got {value!r}"
        )
    if isinstance(default, int):
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        raise ConfigurationError(
            f"override {path!r} expects an int, got {value!r}"
        )
    if isinstance(default, float):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise ConfigurationError(
            f"override {path!r} expects a number, got {value!r}"
        )
    if isinstance(default, str):
        if isinstance(value, str):
            return value
        raise ConfigurationError(
            f"override {path!r} expects a string, got {value!r}"
        )
    raise ConfigurationError(  # pragma: no cover - no such field today
        f"override {path!r} has unsupported type "
        f"{type(default).__name__}"
    )


def parse_assignment(text: str) -> Tuple[str, object]:
    """Parse one CLI ``--set PATH=VALUE`` argument.

    The value is read as JSON when possible (``true``, ``3``, ``1.5``)
    and as a bare string otherwise (``window``), then type-checked
    against the field at ``PATH``.
    """
    path, sep, raw = text.partition("=")
    path = path.strip()
    raw = raw.strip()
    if not sep or not path or not raw:
        raise ConfigurationError(
            f"--set expects PATH=VALUE (e.g. core.model=window), "
            f"got {text!r}"
        )
    try:
        value: object = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return path, coerce_override(path, value)


def _apply(node: object, overrides: Mapping[str, object]) -> object:
    """Apply dotted overrides to a (possibly nested) config dataclass."""
    direct: Dict[str, object] = {}
    nested: Dict[str, Dict[str, object]] = {}
    for path, value in overrides.items():
        head, _, rest = path.partition(".")
        if rest:
            nested.setdefault(head, {})[rest] = value
        else:
            direct[head] = value
    for head, sub in nested.items():
        direct[head] = _apply(getattr(node, head), sub)
    return dataclasses.replace(node, **direct)


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """A named preset plus a canonicalised override mapping.

    ``overrides`` accepts a mapping or an iterable of ``(path, value)``
    pairs and is normalised to a sorted tuple of validated pairs, so
    two specs built from differently-ordered inputs compare, hash and
    serialize identically.
    """

    preset: str = DEFAULT_PRESET
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.preset not in PRESETS:
            raise ConfigurationError(
                f"unknown machine preset {self.preset!r}; expected one "
                f"of {', '.join(sorted(PRESETS))}"
            )
        raw = self.overrides
        items: Iterable[Tuple[object, object]]
        if raw is None:
            items = ()
        elif isinstance(raw, Mapping):
            items = raw.items()
        else:
            items = tuple(raw)
        normalized = []
        seen = set()
        for path, value in items:
            path = str(path)
            if path in seen:
                raise ConfigurationError(f"duplicate override {path!r}")
            seen.add(path)
            normalized.append((path, coerce_override(path, value)))
        object.__setattr__(self, "overrides", tuple(sorted(normalized)))
        # Eager value validation: resolving against the template runs
        # every nested config's __post_init__ checks (geometry, policy
        # names, scaling floors), so a bad override fails here -- at
        # spec construction -- not deep inside a worker process.
        if self.effective_overrides():
            self.resolve(_TEMPLATE)

    # ------------------------------------------------------------------
    @property
    def is_default(self) -> bool:
        """True when resolution is the identity (the Table 3 machine).

        Semantic, not syntactic: a spec that *explicitly* pins fields
        to their Table 3 values (a campaign's baseline level, say) is
        still the default machine and addresses the same cached
        results.  This is sound because every job-owned field is a
        frozen path -- a legal override can never name a field whose
        base value varies across jobs.
        """
        if self.preset == DEFAULT_PRESET and not self.overrides:
            return True
        return all(_default_at(path) == value
                   for path, value in self.effective_overrides().items())

    def effective_overrides(self) -> Dict[str, object]:
        """Preset bundle with user overrides layered on top, sorted."""
        merged = dict(PRESETS[self.preset])
        merged.update(self.overrides)
        return dict(sorted(merged.items()))

    def resolve(self, base: SystemConfig) -> SystemConfig:
        """Apply this spec's overrides to ``base``.

        The default spec returns ``base`` unchanged (same object), so
        legacy configurations stay bit-identical.
        """
        merged = self.effective_overrides()
        if not merged:
            return base
        return _apply(base, merged)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (overrides sorted by path)."""
        return {
            "preset": self.preset,
            "overrides": dict(self.overrides),
        }

    def canonical(self) -> str:
        """Canonical JSON text: the hashing and cache-key input."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable 16-hex-digit digest of the canonical form."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    def with_assignments(self, assignments: Sequence[str]) -> "MachineSpec":
        """A new spec with CLI ``PATH=VALUE`` strings merged in (last wins)."""
        merged = dict(self.overrides)
        for text in assignments:
            path, value = parse_assignment(text)
            merged[path] = value
        return MachineSpec(preset=self.preset,
                           overrides=tuple(merged.items()))

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MachineSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError("machine spec must be a mapping")
        unknown = sorted(set(data) - {"preset", "overrides"})
        if unknown:
            raise ConfigurationError(
                f"unknown machine spec keys: {', '.join(unknown)}"
            )
        overrides = data.get("overrides", {})
        if not isinstance(overrides, Mapping):
            raise ConfigurationError(
                "machine 'overrides' must be a mapping of path -> value"
            )
        return cls(preset=str(data.get("preset", DEFAULT_PRESET)),
                   overrides=tuple(overrides.items()))

    @classmethod
    def from_file(cls, path: str) -> "MachineSpec":
        """Load a machine spec from a ``.json`` or ``.toml`` file."""
        if path.endswith(".toml"):
            if tomllib is None:
                raise ConfigurationError(
                    "TOML machine files need Python >= 3.11 (tomllib); "
                    "use the JSON form on this interpreter"
                )
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        else:
            with open(path) as handle:
                try:
                    data = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{path} is not valid JSON: {exc}"
                    ) from None
        return cls.from_dict(data)


#: The Table 3 machine: what every job simulates unless told otherwise.
DEFAULT_MACHINE = MachineSpec()


def build_system(
    machine: Optional[MachineSpec] = None,
    cache_megabytes: int = 1024,
    num_cores: int = 4,
    replacement: str = "fifo",
    capacity_scale: int = 64,
) -> SystemConfig:
    """The single resolution path from (job knobs, machine spec) to config.

    Job-owned scalars go through :func:`default_system` exactly as
    before; the machine spec's overrides are then layered on top.  With
    the default machine this is byte-for-byte ``default_system(...)``.
    """
    base = default_system(
        cache_megabytes=cache_megabytes,
        num_cores=num_cores,
        replacement=replacement,
        capacity_scale=capacity_scale,
    )
    return (machine or DEFAULT_MACHINE).resolve(base)


def system_config_to_dict(config: SystemConfig) -> Dict[str, object]:
    """Flatten a resolved config into a nested plain dict (provenance)."""
    return dataclasses.asdict(config)
