"""Lightweight statistics counters shared by every simulated component.

Each component owns a :class:`StatGroup`; the experiment harness merges the
groups into flat dictionaries for reporting.  Counters are plain floats --
fast enough for the inner simulation loop -- with helpers for ratios,
means and histogram-style accumulation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping


class StatGroup:
    """A named bag of additive counters.

    >>> stats = StatGroup("l1")
    >>> stats.add("hits")
    >>> stats.add("hits", 2)
    >>> stats["hits"]
    3.0
    >>> stats.ratio("hits", "hits")
    1.0
    """

    __slots__ = ("name", "_counters")

    def __init__(self, name: str):
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Overwrite counter ``key`` (used for gauges like final sizes)."""
        self._counters[key] = value

    def __getitem__(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self) -> Iterable[str]:
        return self._counters.keys()

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return counters[num] / counters[den], or 0.0 if the denominator
        is zero (a convention that keeps report code branch-free)."""
        den = self._counters.get(denominator, 0.0)
        if den == 0.0:
            return 0.0
        return self._counters.get(numerator, 0.0) / den

    def mean(self, total: str, count: str) -> float:
        """Alias of :meth:`ratio` that reads better for averages."""
        return self.ratio(total, count)

    def as_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to a plain dict, optionally prefixing every key."""
        if prefix:
            return {f"{prefix}{k}": v for k, v in self._counters.items()}
        return dict(self._counters)

    def merge(self, other: "StatGroup") -> None:
        """Add every counter of ``other`` into this group."""
        for key, value in other._counters.items():
            self._counters[key] += value

    def reset(self) -> None:
        self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"StatGroup({self.name!r}: {body})"


class Histogram:
    """A bounded histogram over power-of-two (log2) buckets.

    Bucket ``i`` holds values in ``[2**(i-1), 2**i)``; bucket 0 holds
    everything below 1 (including zero and negatives, which latency
    accounting never produces but a histogram must not crash on).  The
    last bucket is open-ended, so the structure is bounded regardless of
    the observed range -- ``num_buckets`` of 40 covers latencies up to
    ~half a second in nanoseconds.

    >>> h = Histogram("lat")
    >>> for v in (0.5, 1.0, 3.0, 900.0):
    ...     h.observe(v)
    >>> h.count
    4
    >>> h.buckets[0], h.buckets[1], h.buckets[2], h.buckets[10]
    (1, 1, 1, 1)
    """

    __slots__ = ("name", "num_buckets", "buckets", "count", "total",
                 "min", "max")

    def __init__(self, name: str, num_buckets: int = 40):
        if num_buckets < 2:
            raise ValueError("a histogram needs at least two buckets")
        self.name = name
        self.num_buckets = num_buckets
        self.buckets: List[int] = [0] * num_buckets
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation (hot-path cheap: int ops only)."""
        index = int(value)
        index = index.bit_length() if index > 0 else 0
        if index >= self.num_buckets:
            index = self.num_buckets - 1
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, fraction: float) -> float:
        """Upper bucket bound at the given cumulative fraction (0..1].

        A bucket-resolution estimate: returns ``2**i`` for the first
        bucket at which the cumulative count reaches the fraction (the
        value every observation in that bucket is strictly below, except
        in the open-ended last bucket).
        """
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0
        threshold = fraction * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= threshold:
                return float(2 ** index)
        return float(2 ** (self.num_buckets - 1))  # pragma: no cover

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        Requires identical bucket counts (merging differently bounded
        histograms would silently misplace the tail).
        """
        if other.num_buckets != self.num_buckets:
            raise ValueError(
                f"cannot merge histograms with {other.num_buckets} and "
                f"{self.num_buckets} buckets"
            )
        for index, bucket in enumerate(other.buckets):
            self.buckets[index] += bucket
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (empty histograms report zero min/max)."""
        empty = self.count == 0
        return {
            "name": self.name,
            "num_buckets": self.num_buckets,
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "mean": self.mean(),
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Histogram":
        hist = cls(str(data["name"]), int(data["num_buckets"]))
        buckets = list(data["buckets"])
        if len(buckets) != hist.num_buckets:
            raise ValueError("bucket list does not match num_buckets")
        hist.buckets = [int(b) for b in buckets]
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        if hist.count:
            hist.min = float(data["min"])
            hist.max = float(data["max"])
        return hist

    def reset(self) -> None:
        self.buckets = [0] * self.num_buckets
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}: n={self.count}, "
                f"mean={self.mean():g})")


def merge_stat_dicts(dicts: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Sum a sequence of flat stat dictionaries key-wise."""
    merged: Dict[str, float] = defaultdict(float)
    for d in dicts:
        for key, value in d.items():
            merged[key] += value
    return dict(merged)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's aggregate for speedups and latencies.

    Returns 0.0 for an empty sequence and raises ``ValueError`` when any
    value is non-positive (a speedup of zero is a reporting bug upstream).
    """
    vals = list(values)
    if not vals:
        return 0.0
    product = 1.0
    for value in vals:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        product *= value
    return product ** (1.0 / len(vals))
