"""Lightweight statistics counters shared by every simulated component.

Each component owns a :class:`StatGroup`; the experiment harness merges the
groups into flat dictionaries for reporting.  Counters are plain floats --
fast enough for the inner simulation loop -- with helpers for ratios,
means and histogram-style accumulation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping


class StatGroup:
    """A named bag of additive counters.

    >>> stats = StatGroup("l1")
    >>> stats.add("hits")
    >>> stats.add("hits", 2)
    >>> stats["hits"]
    3.0
    >>> stats.ratio("hits", "hits")
    1.0
    """

    __slots__ = ("name", "_counters")

    def __init__(self, name: str):
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Overwrite counter ``key`` (used for gauges like final sizes)."""
        self._counters[key] = value

    def __getitem__(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self) -> Iterable[str]:
        return self._counters.keys()

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return counters[num] / counters[den], or 0.0 if the denominator
        is zero (a convention that keeps report code branch-free)."""
        den = self._counters.get(denominator, 0.0)
        if den == 0.0:
            return 0.0
        return self._counters.get(numerator, 0.0) / den

    def mean(self, total: str, count: str) -> float:
        """Alias of :meth:`ratio` that reads better for averages."""
        return self.ratio(total, count)

    def as_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to a plain dict, optionally prefixing every key."""
        if prefix:
            return {f"{prefix}{k}": v for k, v in self._counters.items()}
        return dict(self._counters)

    def merge(self, other: "StatGroup") -> None:
        """Add every counter of ``other`` into this group."""
        for key, value in other._counters.items():
            self._counters[key] += value

    def reset(self) -> None:
        self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"StatGroup({self.name!r}: {body})"


def merge_stat_dicts(dicts: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Sum a sequence of flat stat dictionaries key-wise."""
    merged: Dict[str, float] = defaultdict(float)
    for d in dicts:
        for key, value in d.items():
            merged[key] += value
    return dict(merged)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's aggregate for speedups and latencies.

    Returns 0.0 for an empty sequence and raises ``ValueError`` when any
    value is non-positive (a speedup of zero is a reporting bug upstream).
    """
    vals = list(values)
    if not vals:
        return 0.0
    product = 1.0
    for value in vals:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        product *= value
    return product ** (1.0 / len(vals))
