"""Address arithmetic for the simulated machine.

The paper assumes a 48-bit physical address space, 4 KB OS pages (the
caching granularity of the tagless design) and conventional 64-byte cache
lines for the on-die SRAM caches.  All addresses in the simulator are plain
Python ``int`` byte addresses; this module centralises the bit twiddling so
no other module hard-codes shift amounts.

Two address *kinds* flow through the system:

- **physical addresses (PA)** name bytes in off-package DRAM;
- **cache addresses (CA)** name bytes inside the in-package DRAM cache.

Both kinds share page/line geometry, so the helpers below apply to either.
The :class:`AddressSpace` helper distinguishes the two value ranges when a
component (e.g. the cTLB) must know which kind it is holding.
"""

from __future__ import annotations

import dataclasses

BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 * BYTES_PER_KB
BYTES_PER_GB = 1024 * BYTES_PER_MB

#: OS page size -- the caching granularity of every page-based design here.
PAGE_BYTES = 4 * BYTES_PER_KB
PAGE_SHIFT = 12

#: Conventional cache line size used by the on-die L1/L2 caches.
CACHE_LINE_BYTES = 64
LINE_SHIFT = 6

#: Number of 64 B lines in one 4 KB page (the paper's "64 blocks per page").
LINES_PER_PAGE = PAGE_BYTES // CACHE_LINE_BYTES

#: Width of the physical address space assumed by the paper (48 bits).
PHYSICAL_ADDRESS_BITS = 48


def page_of_address(address: int) -> int:
    """Return the page number containing byte ``address``."""
    return address >> PAGE_SHIFT


def line_of_address(address: int) -> int:
    """Return the global line number containing byte ``address``."""
    return address >> LINE_SHIFT


def line_index_in_page(address: int) -> int:
    """Return the 0..63 index of the line within its page."""
    return (address >> LINE_SHIFT) & (LINES_PER_PAGE - 1)


def address_of_page(page_number: int) -> int:
    """Return the base byte address of ``page_number``."""
    return page_number << PAGE_SHIFT


def address_of_line(line_number: int) -> int:
    """Return the base byte address of global line ``line_number``."""
    return line_number << LINE_SHIFT


def lines_of_page(page_number: int) -> range:
    """Return the range of global line numbers belonging to a page.

    Used when a page-granularity event (e.g. a tagless-cache eviction that
    recycles a cache address) must touch every 64 B line of the page, such
    as invalidating stale on-die cache lines.
    """
    first = page_number * LINES_PER_PAGE
    return range(first, first + LINES_PER_PAGE)


def page_of_line(line_number: int) -> int:
    """Return the page number that global line ``line_number`` belongs to."""
    return line_number // LINES_PER_PAGE


@dataclasses.dataclass(frozen=True)
class AddressSpace:
    """A contiguous page-number range, used to tell PAs and CAs apart.

    The tagless design stores *cache* page numbers in the page table and
    cTLB once a page is cached.  Components that must distinguish the two
    namespaces (for instance the bank-interleaving design, which maps a
    slice of the physical space onto in-package DRAM) carry an
    ``AddressSpace`` describing the page-number interval they own.
    """

    base_page: int
    num_pages: int

    def __post_init__(self) -> None:
        if self.base_page < 0 or self.num_pages <= 0:
            raise ValueError(
                "AddressSpace requires base_page >= 0 and num_pages > 0, "
                f"got base_page={self.base_page} num_pages={self.num_pages}"
            )

    @property
    def limit_page(self) -> int:
        """One past the last page number in the space."""
        return self.base_page + self.num_pages

    @property
    def num_bytes(self) -> int:
        return self.num_pages * PAGE_BYTES

    def contains_page(self, page_number: int) -> bool:
        """Return True if ``page_number`` falls inside this space."""
        return self.base_page <= page_number < self.limit_page

    def contains_address(self, address: int) -> bool:
        """Return True if byte ``address`` falls inside this space."""
        return self.contains_page(page_of_address(address))

    def offset_of_page(self, page_number: int) -> int:
        """Return the 0-based index of a page within this space."""
        if not self.contains_page(page_number):
            raise ValueError(
                f"page {page_number:#x} outside space "
                f"[{self.base_page:#x}, {self.limit_page:#x})"
            )
        return page_number - self.base_page
