"""Deterministic random-number streams.

Every stochastic decision in the library (trace generation, workload
mixing) draws from a :func:`numpy.random.Generator` produced here, keyed by
a textual purpose string, so that results are bit-reproducible across runs
and machines while independent components never share a stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Library-wide base seed.  Changing it re-rolls every synthetic trace.
BASE_SEED = 0x7A61_CE55  # "tagless"


def seed_for(*names: object) -> int:
    """Derive a stable 63-bit seed from a tuple of identifying values.

    >>> seed_for("spec", "mcf", 0) == seed_for("spec", "mcf", 0)
    True
    >>> seed_for("spec", "mcf", 0) != seed_for("spec", "mcf", 1)
    True
    """
    text = "\x00".join(str(n) for n in names)
    digest = hashlib.sha256(f"{BASE_SEED}:{text}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def generator_for(*names: object) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically from ``names``."""
    return np.random.default_rng(seed_for(*names))
