"""Deterministic random-number streams.

Every stochastic decision in the library (trace generation, workload
mixing) draws from a :func:`numpy.random.Generator` produced here, keyed by
a textual purpose string, so that results are bit-reproducible across runs
and machines while independent components never share a stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Library-wide base seed.  Changing it re-rolls every synthetic trace.
BASE_SEED = 0x7A61_CE55  # "tagless"


def derive_seed(base: int, *components: object) -> int:
    """Derive a stable 63-bit child seed from ``base`` and ``components``.

    SHA-256 based, so child seeds are collision-resistant and utterly
    insensitive to arithmetic relationships between components --
    ``derive_seed(s, "rep", 1)`` and ``derive_seed(s, "rep", 2)`` share
    no structure, unlike ad-hoc ``base + i`` schemes where neighbouring
    streams can correlate.  Components are stringified and joined with a
    NUL separator, so ``("ab", "c")`` and ``("a", "bc")`` derive
    different seeds.

    >>> derive_seed(1, "cell", 0) == derive_seed(1, "cell", 0)
    True
    >>> derive_seed(1, "cell", 0) != derive_seed(2, "cell", 0)
    True
    """
    text = "\x00".join(str(c) for c in components)
    digest = hashlib.sha256(f"{base}:{text}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def seed_for(*names: object) -> int:
    """Derive a stable 63-bit seed from a tuple of identifying values.

    Equivalent to :func:`derive_seed` rooted at the library-wide
    :data:`BASE_SEED` in effect at call time.

    >>> seed_for("spec", "mcf", 0) == seed_for("spec", "mcf", 0)
    True
    >>> seed_for("spec", "mcf", 0) != seed_for("spec", "mcf", 1)
    True
    """
    return derive_seed(BASE_SEED, *names)


def generator_for(*names: object) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically from ``names``."""
    return np.random.default_rng(seed_for(*names))
