"""Shared low-level building blocks for the tagless DRAM cache reproduction.

The :mod:`repro.common` package collects the pieces that every other
subsystem depends on but that carry no simulation logic of their own:

- :mod:`repro.common.addressing` -- page/line address arithmetic for the
  48-bit physical address space used throughout the paper.
- :mod:`repro.common.config` -- dataclass descriptions of the simulated
  machine, with presets transcribed from Tables 3, 4 and 6 of the paper.
- :mod:`repro.common.stats` -- counter/aggregation helpers used by every
  simulated component to expose its behaviour to the experiment harness.
- :mod:`repro.common.rng` -- deterministic random-stream helpers so traces
  and experiments are reproducible run to run.
- :mod:`repro.common.errors` -- the exception hierarchy.
"""

from repro.common.addressing import (
    AddressSpace,
    BYTES_PER_KB,
    BYTES_PER_MB,
    BYTES_PER_GB,
    CACHE_LINE_BYTES,
    LINES_PER_PAGE,
    PAGE_BYTES,
    line_index_in_page,
    line_of_address,
    page_of_address,
)
from repro.common.config import (
    CoreConfig,
    DRAMCacheConfig,
    DRAMEnergyConfig,
    DRAMTimingConfig,
    OnDieCacheConfig,
    SRAMTagConfig,
    SystemConfig,
    TLBConfig,
    default_system,
)
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
)
from repro.common.stats import StatGroup

__all__ = [
    "AddressSpace",
    "BYTES_PER_KB",
    "BYTES_PER_MB",
    "BYTES_PER_GB",
    "CACHE_LINE_BYTES",
    "LINES_PER_PAGE",
    "PAGE_BYTES",
    "line_index_in_page",
    "line_of_address",
    "page_of_address",
    "CoreConfig",
    "DRAMCacheConfig",
    "DRAMEnergyConfig",
    "DRAMTimingConfig",
    "OnDieCacheConfig",
    "SRAMTagConfig",
    "SystemConfig",
    "TLBConfig",
    "default_system",
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "StatGroup",
]
