"""The cache-map TLB (cTLB) -- Section 3.1/3.2 of the paper.

Hardware-wise the cTLB *is* the conventional TLB of Table 3 (same entry
count, same organisation); the only additions are (a) the stored
translation target is a cache page number whenever the page is cached,
and (b) each entry carries the Non-Cacheable bit copied from the PTE so
that NC pages keep conventional virtual-to-physical behaviour.

This module is a thin semantic wrapper over
:class:`repro.vm.tlb.TLBHierarchy` that makes those two conventions
explicit and typo-proof for the miss handler and the tests.
"""

from __future__ import annotations

from typing import Optional

from repro.vm.page_table import PageTableEntry
from repro.vm.tlb import TLBEntry, TLBHierarchy


class CacheMapTLB:
    """Per-core cTLB: a TLB hierarchy holding virtual-to-cache mappings."""

    def __init__(self, hierarchy: TLBHierarchy):
        self.hierarchy = hierarchy

    # ------------------------------------------------------------------
    # Lookup path (on every memory access)
    # ------------------------------------------------------------------
    def lookup(self, virtual_page: int):
        """Probe L1/L2; returns ("l1"|"l2"|"miss", entry-or-None).

        On a hit the entry's ``target_page`` is directly the in-package
        cache page (NC bit clear) or the off-package physical page (NC
        bit set) -- no tag check follows in either case.
        """
        return self.hierarchy.lookup(virtual_page)

    # ------------------------------------------------------------------
    # Refill paths (from the cTLB miss handler)
    # ------------------------------------------------------------------
    def install_cache_mapping(self, virtual_page: int, cache_page: int) -> TLBEntry:
        """Install a virtual-to-cache translation (the common case)."""
        entry = TLBEntry(target_page=cache_page, non_cacheable=False)
        self.hierarchy.install(virtual_page, entry)
        return entry

    def install_noncacheable(self, pte: PageTableEntry) -> TLBEntry:
        """Install a conventional virtual-to-physical translation.

        Used for NC pages, which bypass the DRAM cache entirely
        (Section 3.5): the entry behaves exactly like a classic TLB entry.
        """
        entry = TLBEntry(target_page=pte.physical_page, non_cacheable=True)
        self.hierarchy.install(pte.virtual_page, entry)
        return entry

    def install_noncacheable_target(
        self, virtual_page: int, physical_page: int
    ) -> TLBEntry:
        """NC install with an explicit target frame.

        Needed for pages inside an unsplit NC superpage, whose frames
        are the base PTE's frame plus the page's offset into the run.
        """
        entry = TLBEntry(target_page=physical_page, non_cacheable=True)
        self.hierarchy.install(virtual_page, entry)
        return entry

    # ------------------------------------------------------------------
    # Coherence helpers
    # ------------------------------------------------------------------
    def shootdown(self, virtual_page: int) -> bool:
        """Invalidate one mapping (Section 6: eviction consistency)."""
        return self.hierarchy.invalidate(virtual_page)

    def flush(self) -> int:
        """Full cTLB shootdown (context switch); returns entries dropped.

        Delegates to the hierarchy's callback-firing flush so every
        cache-mapped translation clears its GIPT residence bit on the
        way out -- a bare :meth:`repro.vm.tlb.TLB.flush` would strand
        the bits and freeze eviction.
        """
        return self.hierarchy.flush()

    def resident(self, virtual_page: int) -> bool:
        return self.hierarchy.resident(virtual_page)

    def peek_target(self, virtual_page: int) -> Optional[int]:
        """Return the mapped target page without LRU side effects."""
        entry = self.hierarchy.l2.peek(virtual_page)
        return None if entry is None else entry.target_page

    @property
    def accesses(self) -> int:
        return self.hierarchy.accesses

    def miss_rate(self) -> float:
        return self.hierarchy.miss_rate()

    def stats(self, prefix: str = "") -> dict:
        return self.hierarchy.stats(prefix)
