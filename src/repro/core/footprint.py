"""Footprint-style partial page fills (extension; paper references [21]).

The paper names over-fetching as the one weakness of page-granularity
caching and points at *footprint caching* (Jevdjic et al., ISCA 2013) as
the complementary fix: predict which 64 B blocks of a page will actually
be used and transfer only those.  This module adds that mechanism to the
tagless cache:

- a :class:`FootprintHistoryTable` remembers, per physical page, the set
  of blocks touched during the page's previous cache residency;
- a fill transfers the predicted footprint (previous mask, plus the
  block that triggered the miss) instead of the whole 4 KB; a page never
  seen before fetches everything (safe default);
- an access to a block the predictor skipped is a **footprint miss**: it
  fetches that single block from off-package DRAM on demand and adds it
  to the page's fetched set;
- at eviction, the page's *touched* mask replaces its history entry, so
  the predictor tracks phase changes.

In hardware the history table costs 8 bytes per entry; like the GIPT it
is touched only at fills and evictions.
"""

from __future__ import annotations

from typing import Dict

from repro.common.addressing import CACHE_LINE_BYTES, LINES_PER_PAGE

#: All 64 blocks of a page.
FULL_MASK = (1 << LINES_PER_PAGE) - 1


def mask_bit(line_index: int) -> int:
    """The mask bit for one 64 B block of a page."""
    return 1 << line_index


def mask_bytes(mask: int) -> int:
    """Bytes covered by a footprint mask."""
    return bin(mask).count("1") * CACHE_LINE_BYTES


class FootprintHistoryTable:
    """Per-physical-page record of the blocks used last residency."""

    #: Evictions observed before first-touch predictions leave the
    #: conservative fetch-everything mode.
    WARMUP_RECORDS = 32

    def __init__(self) -> None:
        self._masks: Dict[int, int] = {}
        self.predictions = 0
        self.full_fetches = 0
        self.predicted_bytes = 0
        self.records = 0
        self._popcount_sum = 0

    def predict(self, physical_page: int, first_line: int) -> int:
        """Footprint to fetch when filling ``physical_page``.

        The triggering block is always included.  Refills use the page's
        own last-residency mask.  First touches start conservative
        (fetch everything); once enough residencies have been observed,
        they fetch a contiguous window sized by the *global average*
        footprint density, anchored at the triggering block -- the cheap
        stand-in for the original footprint cache's PC-correlated
        predictor, matched to this simulator's burst-sequential traces.
        """
        self.predictions += 1
        history = self._masks.get(physical_page)
        if history is not None:
            mask = history | mask_bit(first_line)
        elif self.records < self.WARMUP_RECORDS:
            self.full_fetches += 1
            mask = FULL_MASK
        else:
            window = max(1, round(self._popcount_sum / self.records))
            mask = 0
            for offset in range(min(window, LINES_PER_PAGE)):
                mask |= mask_bit((first_line + offset) % LINES_PER_PAGE)
        self.predicted_bytes += mask_bytes(mask)
        return mask

    def record(self, physical_page: int, touched_mask: int) -> None:
        """Store the blocks actually used during the ending residency."""
        self.records += 1
        self._popcount_sum += bin(touched_mask).count("1")
        if touched_mask:
            self._masks[physical_page] = touched_mask
        else:
            # An untouched residency (pure pollution): remember the
            # smallest footprint so a refill stays cheap.
            self._masks[physical_page] = mask_bit(0)

    def __len__(self) -> int:
        return len(self._masks)

    def storage_bytes(self) -> int:
        """8 bytes (one 64-bit mask) per tracked page."""
        return 8 * len(self._masks)

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}predictions": float(self.predictions),
            f"{prefix}full_fetches": float(self.full_fetches),
            f"{prefix}predicted_bytes": float(self.predicted_bytes),
            f"{prefix}records": float(self.records),
            f"{prefix}tracked_pages": float(len(self._masks)),
        }
