"""The tagless DRAM cache engine (Sections 3.1-3.4 of the paper).

This class owns the cache's *state machine*: block allocation via the
header pointer, cache fills, the alpha free-block invariant, asynchronous
eviction through the free queue, GIPT maintenance, and the residence bits
that make "cTLB hit implies DRAM-cache hit" an invariant.  All DRAM
timing/energy for those operations is charged here against the two
:class:`repro.dram.device.DRAMDevice` instances.

What it deliberately does **not** contain: any tag array, any tag probe
latency, and any per-access metadata beyond the victim tracker -- the
whole point of the design.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.config import CoreConfig, DRAMCacheConfig
from repro.common.errors import SimulationError
from repro.core.footprint import FootprintHistoryTable, mask_bit, mask_bytes
from repro.core.free_queue import FreeQueue
from repro.core.gipt import GlobalInvertedPageTable
from repro.core.policies import make_victim_tracker
from repro.dram.device import DRAMDevice
from repro.obs.events import null_event
from repro.vm.page_table import PageTableEntry

#: Bytes per GIPT entry as laid out in off-package memory (82 bits padded).
GIPT_ENTRY_BYTES = 16

#: Callback invoked when a cache page is recycled, so the design can
#: invalidate the departing page's lines from the on-die caches (which
#: are tagged by cache address in this design).
PageEvictedFn = Callable[[int], None]


class TaglessCacheEngine:
    """State and cost model of the tagless, fully associative DRAM cache."""

    def __init__(
        self,
        capacity_pages: int,
        cache_config: DRAMCacheConfig,
        core_config: CoreConfig,
        num_cores: int,
        in_package: DRAMDevice,
        off_package: DRAMDevice,
        gipt_base_page: int,
        on_page_evicted: Optional[PageEvictedFn] = None,
    ):
        if capacity_pages <= 0:
            raise SimulationError("tagless cache needs at least one page")
        self.capacity_pages = capacity_pages
        self.cache_config = cache_config
        self.core_config = core_config
        self.in_package = in_package
        self.off_package = off_package
        self.gipt_base_page = gipt_base_page
        self.on_page_evicted = on_page_evicted

        self.gipt = GlobalInvertedPageTable(capacity_pages, num_cores)
        self.free_queue = FreeQueue(capacity_pages, alpha=cache_config.alpha)
        self.victims = make_victim_tracker(cache_config.replacement)
        #: Footprint predictor (partial-fill extension); None = full
        #: 4 KB fills, the paper's evaluated behaviour.
        self.footprint = (
            FootprintHistoryTable() if cache_config.footprint_caching
            else None
        )

        #: Prebound no-op rebound by installed telemetry (repro.obs);
        #: emission sites are all off the per-access path.
        self.trace_event = null_event

        self.fills = 0
        self.fill_latency_ns = 0.0
        self.victim_hits = 0
        self.writebacks = 0
        self.alpha_deficits = 0
        self.footprint_misses = 0
        #: Lifetime flag (never reset): has the free pool *ever* run an
        #: alpha deficit?  The ``alpha_deficits`` counter above resets at
        #: the warmup boundary, but the invariant checker must not flag
        #: ``free < alpha`` as a violation if the deficit legitimately
        #: predates the reset.
        self._alpha_deficit_ever = False

    # ------------------------------------------------------------------
    # Fill path (cTLB miss, page not cached) -- the shaded path of Fig. 4
    # ------------------------------------------------------------------
    def allocate_and_fill(
        self,
        now_ns: float,
        pte: PageTableEntry,
        core_id: int,
        first_line: int = 0,
    ) -> tuple:
        """Allocate a free block, copy the page in, update GIPT and PTE.

        Returns ``(cache_page, latency_ns)``.  The latency covers the
        demand page copy from off-package DRAM and the conservative
        two-memory-write GIPT update of Section 3.4; the write of the
        page *into* the in-package device overlaps the copy and is
        charged as background traffic.  With footprint caching enabled,
        only the predicted blocks transfer (``first_line`` identifies
        the block that triggered the miss and is always included).
        """
        if self.free_queue.free_blocks == 0:
            # The asynchronous evictor fell behind (every candidate was
            # TLB-resident at the last check).  Retry synchronously
            # before declaring the alpha invariant broken.
            self._maintain_alpha(now_ns)
        cache_page = self.free_queue.allocate()
        entry = self.gipt.insert(cache_page, pte.physical_page, pte)
        # Protect the page for the filling core before any victim is
        # chosen: a fill must never evict itself.
        self.gipt.set_resident(cache_page, core_id)
        self.victims.on_fill(cache_page)

        if self.footprint is not None:
            entry.fetched_mask = self.footprint.predict(
                pte.physical_page, first_line
            )
        fill_bytes = mask_bytes(entry.fetched_mask)

        # Demand read of the page (or its predicted footprint) from
        # off-package DRAM, critical block first (the triggering
        # access's block unblocks the core; the rest streams behind)...
        latency_ns = self.off_package.fill_page(
            now_ns, pte.physical_page, num_bytes=fill_bytes
        )
        # ...streamed into the in-package device concurrently.
        self.in_package.stream_page(
            now_ns, cache_page, is_write=True, asynchronous=True,
            num_bytes=fill_bytes,
        )
        # GIPT update: conservatively two full memory writes
        # (Section 3.4).  They are posted stores -- the handler pays the
        # device service latency but does not queue behind the page
        # stream -- and the header pointer's sequential walk gives them
        # the very high row locality the paper points out.  The table
        # may live in either DRAM (Section 3.2); off-package by default.
        gipt_device = (
            self.in_package if self.cache_config.gipt_in_package
            else self.off_package
        )
        gipt_page = self.gipt_page_of(cache_page)
        latency_ns += gipt_device.posted_write_block(
            now_ns + latency_ns, gipt_page
        )
        latency_ns += gipt_device.posted_write_block(
            now_ns + latency_ns, gipt_page
        )

        pte.install_in_cache(cache_page)
        self.fills += 1
        self.fill_latency_ns += latency_ns
        self.trace_event("cache", "fill", now_ns, latency_ns, core_id,
                         {"ca": cache_page, "bytes": fill_bytes})

        self._maintain_alpha(now_ns)
        return cache_page, latency_ns

    def gipt_page_of(self, cache_page: int) -> int:
        """Off-package page holding the GIPT entry for ``cache_page``."""
        return self.gipt_base_page + (cache_page * GIPT_ENTRY_BYTES) // 4096

    # ------------------------------------------------------------------
    # Access-path bookkeeping (no latency -- that is the design's point)
    # ------------------------------------------------------------------
    def note_access(
        self, cache_page: int, is_write: bool, line_index: int = 0
    ) -> None:
        """Record a DRAM-cache access for replacement and dirtiness."""
        self.victims.on_touch(cache_page)
        entry = self.gipt.lookup(cache_page)
        if entry is None:
            return
        entry.touched_mask |= mask_bit(line_index)
        if is_write:
            entry.dirty = True

    def ensure_line_fetched(
        self, cache_page: int, line_index: int, now_ns: float
    ) -> float:
        """Footprint-miss check: fetch a skipped block on demand.

        Returns the extra latency (0.0 when the block is already in the
        cache, which is always the case without footprint caching).
        The fetched block joins the page's resident footprint.
        """
        if self.footprint is None:
            return 0.0
        entry = self.gipt.lookup(cache_page)
        if entry is None or entry.fetched_mask & mask_bit(line_index):
            return 0.0
        self.footprint_misses += 1
        entry.fetched_mask |= mask_bit(line_index)
        latency_ns = self.off_package.access_block(
            now_ns, entry.physical_page
        )
        # Lay the block into the cache behind the demand read.
        self.in_package.channels.occupy_background(
            self.in_package.channels.channel_of_page(cache_page),
            now_ns,
            self.in_package.timing.transfer_ns(64),
        )
        self.in_package.energy.charge(64, 0, is_write=True)
        return latency_ns

    def note_victim_hit(self, cache_page: int) -> None:
        """An in-package victim hit (Table 1, row 3)."""
        self.victim_hits += 1
        self.victims.on_touch(cache_page)

    # ------------------------------------------------------------------
    # Replacement (asynchronous)
    # ------------------------------------------------------------------
    def _maintain_alpha(self, now_ns: float) -> None:
        """Restore the invariant that >= alpha blocks are free."""
        while self.free_queue.needs_eviction():
            victim = self.victims.select(protected=self.gipt.is_resident)
            if victim is None:
                # Every cached page is inside some TLB's reach.  Possible
                # only when the cache is barely larger than total TLB
                # reach; record it and let the free pool run a deficit.
                self.alpha_deficits += 1
                self._alpha_deficit_ever = True
                self.trace_event("cache", "alpha_deficit", now_ns, None, 0,
                                 {"free": self.free_queue.free_blocks,
                                  "alpha": self.free_queue.alpha})
                break
            self.free_queue.enqueue_eviction(victim)
            self._drain_evictions(now_ns)

    def _drain_evictions(self, now_ns: float) -> None:
        """Background eviction process (Figure 5, step 2).

        State changes are applied immediately; bus time and energy are
        charged as background traffic so no core-visible latency accrues
        -- the asynchronous-eviction property of Section 3.1.
        """
        while True:
            cache_page = self.free_queue.pop_pending()
            if cache_page is None:
                return
            entry = self.gipt.remove(cache_page)
            self.trace_event("cache", "evict", now_ns, None, 0,
                             {"ca": cache_page, "dirty": entry.dirty})
            if self.on_page_evicted is not None:
                # Stale on-die lines tagged with this cache address must
                # go; their dirt is subsumed by the page write-back.
                self.on_page_evicted(cache_page)
            if entry.dirty:
                # Read the (resident part of the) page out of the cache
                # and write it home.
                resident_bytes = mask_bytes(entry.fetched_mask)
                self.in_package.stream_page(
                    now_ns, cache_page, is_write=False, asynchronous=True,
                    num_bytes=resident_bytes,
                )
                self.off_package.stream_page(
                    now_ns, entry.physical_page, is_write=True,
                    asynchronous=True, num_bytes=resident_bytes,
                )
                self.writebacks += 1
                self.trace_event("cache", "writeback", now_ns, None, 0,
                                 {"ca": cache_page,
                                  "bytes": resident_bytes})
            if self.footprint is not None:
                # Teach the predictor what this residency actually used.
                self.footprint.record(
                    entry.physical_page, entry.touched_mask
                )
            # Recover the PPN from the GIPT and rewrite the PTE.
            entry.pte.evict_from_cache()
            self.off_package.energy.charge(8, 0, is_write=True)
            self.victims.on_evicted(cache_page)
            self.free_queue.mark_free(cache_page)

    # ------------------------------------------------------------------
    # Invariant checks and reporting
    # ------------------------------------------------------------------
    def gated_pages(self) -> tuple:
        """Cache pages power-gated out of service (resizable subclass
        hook; the fixed-capacity engine gates nothing)."""
        return ()

    def check_invariants(self) -> None:
        """Raise SimulationError if cache and GIPT state have diverged.

        Called by tests after simulation runs and by the
        ``repro.validate`` invariant checker periodically during
        validated runs.  Strictly read-only.
        """
        live = len(self.gipt)
        free_pages = self.free_queue.free_pages()
        pending_pages = self.free_queue.pending_pages()
        gated_pages = self.gated_pages()
        free = len(free_pages)
        pending = len(pending_pages)
        gated = len(gated_pages)
        if live + free + pending + gated != self.capacity_pages:
            raise SimulationError(
                f"block accounting broken: {live} live + {free} free + "
                f"{pending} pending + {gated} gated != capacity "
                f"{self.capacity_pages}"
            )
        # The free pool, the eviction queue, the gated region and the
        # GIPT's live entries must partition the cache: any overlap
        # means a block is simultaneously "holds data" and "free to
        # allocate" (or powered off while in use).
        free_set = set(free_pages)
        if len(free_set) != free:
            raise SimulationError("free pool holds duplicate cache pages")
        pending_set = set(pending_pages)
        overlap = free_set & pending_set
        if overlap:
            raise SimulationError(
                f"HP free pool and eviction queue share pages {overlap}"
            )
        gated_set = set(gated_pages)
        overlap = gated_set & (free_set | pending_set
                               | set(self.gipt.cached_cache_pages()))
        if overlap:
            raise SimulationError(
                f"power-gated region overlaps in-service pages {overlap}"
            )
        live_overlap = free_set.intersection(self.gipt.cached_cache_pages())
        if live_overlap:
            raise SimulationError(
                f"free pool contains live (GIPT-mapped) pages {live_overlap}"
            )
        mask_limit = 1 << self.gipt.num_cores
        for cache_page in self.gipt.cached_cache_pages():
            entry = self.gipt.require(cache_page)
            pte = entry.pte
            if not pte.valid_in_cache or pte.cache_page != cache_page:
                raise SimulationError(
                    f"GIPT entry for CA {cache_page:#x} disagrees with its "
                    f"PTE (VC={pte.valid_in_cache}, CA={pte.cache_page})"
                )
            if not (0 <= entry.residence_mask < mask_limit):
                raise SimulationError(
                    f"GIPT entry for CA {cache_page:#x} has residence mask "
                    f"{entry.residence_mask:#x} with bits beyond "
                    f"{self.gipt.num_cores} cores"
                )

    def reset_stats(self) -> None:
        """Zero counters; cache contents, GIPT and free queue stay warm."""
        self.fills = 0
        self.fill_latency_ns = 0.0
        self.victim_hits = 0
        self.writebacks = 0
        self.alpha_deficits = 0
        self.footprint_misses = 0
        self.gipt.inserts = 0
        self.gipt.removals = 0
        self.gipt.residence_updates = 0
        self.free_queue.allocations = 0
        self.free_queue.evictions_enqueued = 0
        self.free_queue.evictions_completed = 0
        if self.footprint is not None:
            # Counters only -- the predictor's learned history (records,
            # masks) is warm state and must survive the reset.
            self.footprint.predictions = 0
            self.footprint.full_fetches = 0
            self.footprint.predicted_bytes = 0

    def occupancy(self) -> float:
        return len(self.gipt) / self.capacity_pages

    def mean_fill_latency_ns(self) -> float:
        if self.fills == 0:
            return 0.0
        return self.fill_latency_ns / self.fills

    def stats(self, prefix: str = "") -> dict:
        out = {
            f"{prefix}fills": float(self.fills),
            f"{prefix}fill_latency_ns": self.fill_latency_ns,
            f"{prefix}victim_hits": float(self.victim_hits),
            f"{prefix}writebacks": float(self.writebacks),
            f"{prefix}alpha_deficits": float(self.alpha_deficits),
            f"{prefix}footprint_misses": float(self.footprint_misses),
            f"{prefix}occupancy": self.occupancy(),
        }
        out.update(self.gipt.stats(f"{prefix}gipt_"))
        out.update(self.free_queue.stats(f"{prefix}fq_"))
        if self.footprint is not None:
            out.update(self.footprint.stats(f"{prefix}footprint_"))
        return out
