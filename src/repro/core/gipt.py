"""Global Inverted Page Table (GIPT) -- Section 3.2 of the paper.

The GIPT is the *only* new data structure the tagless design introduces.
It is indexed by cache (page) address and stores, per cached page:

- the physical page number (PPN) the page came from, needed to put the
  page back on eviction;
- a pointer to the PTE currently mapping the page (PTEP), so the eviction
  machinery can rewrite that PTE from CA back to PA;
- a TLB-residence bit vector (one bit per core), so the replacement logic
  never evicts a page that is still within some core's TLB reach -- which
  is what makes "cTLB hit implies cache hit" an invariant.

At 82 bits per entry (36 PPN + 42 PTEP + 4 residence bits for a quad-core)
a 1 GB cache needs 2.56 MB -- 0.25 % overhead -- and, crucially, the table
is only touched at TLB misses and evictions, never on the cache access
path, so it can live in either DRAM.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.common.addressing import BYTES_PER_MB
from repro.common.errors import SimulationError
from repro.vm.page_table import PageTableEntry

#: Bits per GIPT entry as itemised in Section 3.2.
PPN_BITS = 36
PTEP_BITS = 42
ENTRY_BITS_BASE = PPN_BITS + PTEP_BITS


@dataclasses.dataclass(slots=True)
class GIPTEntry:
    """One cached page's reverse mapping.

    The two footprint masks exist only when footprint caching (the
    partial-fill extension, :mod:`repro.core.footprint`) is enabled;
    with full fills ``fetched_mask`` simply stays all-ones.
    """

    physical_page: int
    pte: PageTableEntry
    residence_mask: int = 0
    dirty: bool = False
    #: Blocks of the page present in the cache (bit per 64 B block).
    fetched_mask: int = (1 << 64) - 1
    #: Blocks touched during this residency (feeds the footprint
    #: predictor at eviction).
    touched_mask: int = 0

    def resident_anywhere(self) -> bool:
        """True when any core's TLB still maps this page."""
        return self.residence_mask != 0


class GlobalInvertedPageTable:
    """CA-indexed reverse map shared by every process in the system."""

    def __init__(self, capacity_pages: int, num_cores: int):
        if capacity_pages <= 0:
            raise ValueError("GIPT capacity must be positive")
        self.capacity_pages = capacity_pages
        self.num_cores = num_cores
        self._entries: Dict[int, GIPTEntry] = {}
        self.inserts = 0
        self.removals = 0
        self.residence_updates = 0

    # ------------------------------------------------------------------
    # Entry lifecycle
    # ------------------------------------------------------------------
    def insert(self, cache_page: int, physical_page: int, pte: PageTableEntry) -> GIPTEntry:
        """Create the reverse mapping when a page is filled into the cache."""
        self._check_range(cache_page)
        if cache_page in self._entries:
            raise SimulationError(
                f"GIPT already holds CA {cache_page:#x}; double allocation"
            )
        entry = GIPTEntry(physical_page=physical_page, pte=pte)
        self._entries[cache_page] = entry
        self.inserts += 1
        return entry

    def lookup(self, cache_page: int) -> Optional[GIPTEntry]:
        return self._entries.get(cache_page)

    def require(self, cache_page: int) -> GIPTEntry:
        """Lookup that treats absence as a simulator bug."""
        entry = self._entries.get(cache_page)
        if entry is None:
            raise SimulationError(
                f"GIPT has no entry for CA {cache_page:#x}; the cache and "
                "the GIPT have diverged"
            )
        return entry

    def remove(self, cache_page: int) -> GIPTEntry:
        """Drop the mapping as the final step of an eviction."""
        entry = self._entries.pop(cache_page, None)
        if entry is None:
            raise SimulationError(
                f"evicting CA {cache_page:#x} that the GIPT does not hold"
            )
        if entry.resident_anywhere():
            raise SimulationError(
                f"evicting CA {cache_page:#x} while TLB-resident "
                f"(mask={entry.residence_mask:#x}); the residence bits "
                "failed to protect it"
            )
        self.removals += 1
        return entry

    # ------------------------------------------------------------------
    # TLB residence bits
    # ------------------------------------------------------------------
    def set_resident(self, cache_page: int, core_id: int) -> None:
        """Mark the page as within ``core_id``'s TLB reach."""
        self._check_core(core_id)
        self.require(cache_page).residence_mask |= 1 << core_id
        self.residence_updates += 1

    def clear_resident(self, cache_page: int, core_id: int) -> None:
        """Mark the page as having left ``core_id``'s TLB reach."""
        self._check_core(core_id)
        entry = self._entries.get(cache_page)
        if entry is None:
            # The page may have been evicted after its last TLB entry
            # left; clearing residence for a gone page is harmless.
            return
        entry.residence_mask &= ~(1 << core_id)
        self.residence_updates += 1

    def is_resident(self, cache_page: int) -> bool:
        entry = self._entries.get(cache_page)
        return entry is not None and entry.resident_anywhere()

    # ------------------------------------------------------------------
    # Size model
    # ------------------------------------------------------------------
    @classmethod
    def entry_bits(cls, num_cores: int) -> int:
        """Bits per entry: 36 PPN + 42 PTEP + one residence bit per core."""
        return ENTRY_BITS_BASE + num_cores

    def storage_bytes(self) -> int:
        """Total table size for this capacity (Section 3.2's 2.56 MB)."""
        return self.capacity_pages * self.entry_bits(self.num_cores) // 8

    def storage_overhead(self, cache_bytes: int) -> float:
        """Fraction of the cache the GIPT costs (paper: < 0.25 %)."""
        return self.storage_bytes() / cache_bytes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, cache_page: int) -> bool:
        return cache_page in self._entries

    def cached_cache_pages(self):
        """Iterate over all CAs currently holding data."""
        return self._entries.keys()

    def _check_range(self, cache_page: int) -> None:
        if not (0 <= cache_page < self.capacity_pages):
            raise SimulationError(
                f"CA {cache_page:#x} outside cache of "
                f"{self.capacity_pages} pages"
            )

    def _check_core(self, core_id: int) -> None:
        if not (0 <= core_id < self.num_cores):
            raise SimulationError(
                f"core id {core_id} outside 0..{self.num_cores - 1}"
            )

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}inserts": float(self.inserts),
            f"{prefix}removals": float(self.removals),
            f"{prefix}residence_updates": float(self.residence_updates),
            f"{prefix}live_entries": float(len(self._entries)),
            f"{prefix}storage_bytes": float(self.storage_bytes()),
        }


def gipt_storage_megabytes(cache_gigabytes: float, num_cores: int = 4) -> float:
    """Headline size check: 1 GB cache, 4 cores -> ~2.56 MB (paper §3.2)."""
    pages = int(cache_gigabytes * 1024 * 1024 * 1024) // 4096
    bits = GlobalInvertedPageTable.entry_bits(num_cores)
    return pages * bits / 8 / BYTES_PER_MB
