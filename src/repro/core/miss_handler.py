"""The cTLB miss handler -- the flow chart of Figure 4.

The handler consolidates address translation and cache management: after
the conventional page-table walk it inspects the PTE's (VC, NC) bits and

- **NC page** -> install a conventional virtual-to-physical mapping and
  let accesses bypass the DRAM cache;
- **VC=1** -> *in-package victim hit*: the page is already cached, so the
  handler simply returns the cache address (Table 1 row 3: no penalty
  beyond the walk itself);
- **(VC, NC) = (0, 0)** -> the shaded path: set PU, allocate a free block
  at the header pointer, fill the page, update GIPT and PTE, clear PU.

The PU (Pending-Update) bit prevents duplicate fills when several threads
miss on the same page concurrently; in the simulator a second thread that
arrives before an in-flight fill's completion time stalls until it
finishes, then proceeds as a victim hit.
"""

from __future__ import annotations

import enum

from typing import Optional

from repro.common.config import CoreConfig
from repro.core.ctlb import CacheMapTLB
from repro.core.tagless_cache import TaglessCacheEngine
from repro.policy.base import CachingPolicy, PolicyDecision
from repro.vm.page_table import PageTable
from repro.vm.walker import PageTableWalker


class MissOutcome(enum.Enum):
    """How a cTLB miss was resolved (the rows of Table 1 that start
    with a TLB miss, plus the NC refill and policy-bypass cases)."""

    NON_CACHEABLE = "non_cacheable"
    VICTIM_HIT = "victim_hit"
    FILL = "fill"
    PU_WAIT = "pu_wait"
    #: The caching policy declined this fill for now (Section 3.5's
    #: flexible bypassing); the page stays cacheable for later misses.
    BYPASS = "bypass"


class CTLBMissHandler:
    """Per-core miss handler binding a cTLB to the shared cache engine."""

    def __init__(
        self,
        core_id: int,
        ctlb: CacheMapTLB,
        engine: TaglessCacheEngine,
        walker: PageTableWalker,
        core_config: CoreConfig,
        policy: Optional[CachingPolicy] = None,
    ):
        self.core_id = core_id
        self.ctlb = ctlb
        self.engine = engine
        self.walker = walker
        self.core_config = core_config
        #: The pluggable caching policy (Section 3.5).  None means the
        #: paper's default: always cache.
        self.policy = policy
        self.outcomes = {outcome: 0 for outcome in MissOutcome}
        self.cycles_total = 0.0
        self.superpage_splits = 0
        self.superpage_nc_pins = 0

    def handle(
        self,
        table: PageTable,
        virtual_page: int,
        now_ns: float,
        first_line: int = 0,
    ):
        """Resolve a cTLB miss; returns (cycles, MissOutcome).

        The returned cycle count is the full miss penalty of Equation 5:
        the walk, plus -- only on the fill path -- the off-package page
        copy and the GIPT update.  ``first_line`` is the 64 B block whose
        access triggered the miss (the footprint predictor's seed).
        """
        pte, cycles = self.walker.walk(table, virtual_page, now_ns)

        if pte.is_superpage:
            pte, extra = self._handle_superpage(
                table, virtual_page, pte
            )
            cycles += extra
            if pte is None:
                # The run was pinned NC; the faulting page's mapping is
                # already installed.
                return self._finish(cycles, MissOutcome.NON_CACHEABLE)

        if pte.non_cacheable:
            self.ctlb.install_noncacheable(pte)
            return self._finish(cycles, MissOutcome.NON_CACHEABLE)

        # PU busy-wait: another thread's fill for this page is in flight.
        waited = False
        if pte.pending_until_ns > now_ns:
            cycles += self.core_config.cycles_from_ns(
                pte.pending_until_ns - now_ns
            )
            waited = True

        if pte.valid_in_cache:
            cache_page = pte.cache_page
            self.engine.note_victim_hit(cache_page)
            self.engine.gipt.set_resident(cache_page, self.core_id)
            self.ctlb.install_cache_mapping(virtual_page, cache_page)
            outcome = MissOutcome.PU_WAIT if waited else MissOutcome.VICTIM_HIT
            return self._finish(cycles, outcome)

        # Consult the pluggable caching policy before committing to a
        # fill (Section 3.5: policies are "flexibly plugged in by
        # modifying the TLB miss handler").
        if self.policy is not None:
            decision = self.policy.decide(
                table.process_id, virtual_page, pte, now_ns
            )
            if decision is PolicyDecision.PIN_NC:
                pte.non_cacheable = True
                self.ctlb.install_noncacheable(pte)
                return self._finish(cycles, MissOutcome.NON_CACHEABLE)
            if decision is PolicyDecision.BYPASS:
                # Serve this TLB window off-package; the PTE keeps
                # (VC, NC) = (0, 0) so the page is reconsidered later.
                self.ctlb.install_noncacheable(pte)
                return self._finish(cycles, MissOutcome.BYPASS)

        # Shaded path of Figure 4: allocate, fill, update GIPT + PTE.
        # The fill is issued at the handler's entry time: memory-system
        # timestamps track the core clock, never partial latencies.
        pte.pending_update = True
        cache_page, fill_ns = self.engine.allocate_and_fill(
            now_ns, pte, self.core_id, first_line=first_line
        )
        pte.pending_until_ns = now_ns + fill_ns
        pte.pending_update = False
        cycles += self.core_config.cycles_from_ns(fill_ns)

        self.engine.gipt.set_resident(cache_page, self.core_id)
        self.ctlb.install_cache_mapping(virtual_page, cache_page)
        if self.policy is not None:
            self.policy.on_fill(table.process_id, virtual_page)
        return self._finish(cycles, MissOutcome.FILL)

    def _handle_superpage(self, table: PageTable, virtual_page: int, pte):
        """Resolve a touch inside an unsplit superpage (Sections 3.5/6).

        Policy "split": expand the superpage into 4 KB PTEs -- the
        hierarchical page table makes this a bounded, one-time cost --
        and return the faulting page's fresh PTE so caching proceeds
        normally.  Policy "nc": pin the whole run non-cacheable and
        install the faulting page's VA->PA mapping directly (returns
        ``(None, cost)``).
        """
        handling = self.engine.cache_config.superpage_handling
        cfg = self.walker.config
        if handling == "split":
            pages = table.split_superpage(pte.virtual_page)
            self.superpage_splits += 1
            cost = (
                cfg.superpage_split_base_cycles
                + cfg.superpage_split_cycles_per_page * pages
            )
            # The new PTE writes drain through the write buffer.
            if self.walker.pte_backing is not None:
                self.walker.pte_backing.energy.charge(
                    8 * pages, 0, is_write=True
                )
            return table.entry(virtual_page), cost
        # "nc": the run's locality does not justify coarse-grained
        # caching (Section 3.5: "it would be safe to specify superpages
        # as non-cacheable").
        pte.non_cacheable = True
        offset = virtual_page - pte.virtual_page
        self.ctlb.install_noncacheable_target(
            virtual_page, pte.physical_page + offset
        )
        self.superpage_nc_pins += 1
        return None, 0.0

    def _finish(self, cycles: float, outcome: MissOutcome):
        self.outcomes[outcome] += 1
        self.cycles_total += cycles
        return cycles, outcome

    def stats(self, prefix: str = "") -> dict:
        out = {
            f"{prefix}{outcome.value}": float(count)
            for outcome, count in self.outcomes.items()
        }
        out[f"{prefix}cycles_total"] = self.cycles_total
        out[f"{prefix}superpage_splits"] = float(self.superpage_splits)
        out[f"{prefix}superpage_nc_pins"] = float(self.superpage_nc_pins)
        return out
