"""Victim selection for the tagless cache (Section 5.2, Figure 11).

The paper's default is FIFO -- victims leave in allocation order, which is
what makes the header pointer a simple incrementing counter -- with the
constraint that a page still resident in some TLB is never chosen (the
GIPT residence bits guarantee "cTLB hit implies cache hit").  Figure 11
compares FIFO against LRU and finds LRU only ~1.6 % better, justifying
the cheaper policy; both are implemented here behind one interface so the
ablation benchmark can swap them.

TLB-resident pages encountered at the FIFO head are re-queued behind the
tail (second-chance style).  The paper only specifies that residents are
not enqueued for eviction; re-queueing is the natural realisation and
coincides with strict FIFO whenever residents are a small minority of the
victim region, which Table 3's sizes guarantee.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Optional

from repro.common.errors import SimulationError

ProtectedFn = Callable[[int], bool]


class VictimTracker:
    """Interface: orders cached pages for eviction."""

    def on_fill(self, cache_page: int) -> None:
        """A page was just allocated at ``cache_page``."""
        raise NotImplementedError

    def on_touch(self, cache_page: int) -> None:
        """The page at ``cache_page`` was accessed (LRU cares, FIFO not)."""
        raise NotImplementedError

    def on_evicted(self, cache_page: int) -> None:
        """The page at ``cache_page`` left the cache."""
        raise NotImplementedError

    def select(self, protected: ProtectedFn) -> Optional[int]:
        """Choose and remove the next victim, skipping protected pages.

        Returns None when every tracked page is protected (the caller
        treats this as "cannot maintain alpha right now").
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def tracked_pages(self):
        """Live tracked pages (validation support, read-only)."""
        raise NotImplementedError


class FIFOVictimTracker(VictimTracker):
    """Allocation-order victims with second-chance skipping of residents.

    Queue entries are (cache_page, epoch) pairs and each page carries a
    current epoch, bumped on every fill.  A dequeued entry whose epoch is
    stale -- the page was evicted, or evicted and refilled since it was
    enqueued -- is discarded, which keeps selection O(1) amortised with
    no linear deque surgery and makes double-selection impossible.
    """

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._epoch: dict = {}
        self._live: set = set()
        self.skips = 0

    def on_fill(self, cache_page: int) -> None:
        epoch = self._epoch.get(cache_page, 0) + 1
        self._epoch[cache_page] = epoch
        self._queue.append((cache_page, epoch))
        self._live.add(cache_page)

    def on_touch(self, cache_page: int) -> None:
        pass  # FIFO ignores reuse; that is its whole point.

    def on_evicted(self, cache_page: int) -> None:
        self._live.discard(cache_page)

    def select(self, protected: ProtectedFn) -> Optional[int]:
        attempts = len(self._queue)
        for _ in range(attempts):
            candidate, epoch = self._queue.popleft()
            if (candidate not in self._live
                    or self._epoch.get(candidate) != epoch):
                continue  # stale entry: evicted (and maybe refilled)
            if protected(candidate):
                self.skips += 1
                self._queue.append((candidate, epoch))
                continue
            self._live.discard(candidate)
            return candidate
        return None

    def __len__(self) -> int:
        return len(self._live)

    def tracked_pages(self):
        return tuple(self._live)


class LRUVictimTracker(VictimTracker):
    """Least-recently-used victims (the Figure 11 comparison point)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()
        self.skips = 0

    def on_fill(self, cache_page: int) -> None:
        self._order[cache_page] = None
        self._order.move_to_end(cache_page)

    def on_touch(self, cache_page: int) -> None:
        if cache_page in self._order:
            self._order.move_to_end(cache_page)

    def on_evicted(self, cache_page: int) -> None:
        self._order.pop(cache_page, None)

    def select(self, protected: ProtectedFn) -> Optional[int]:
        victim = None
        for candidate in self._order:
            if protected(candidate):
                self.skips += 1
                continue
            victim = candidate
            break
        if victim is None:
            return None
        del self._order[victim]
        return victim

    def __len__(self) -> int:
        return len(self._order)

    def tracked_pages(self):
        return tuple(self._order)


class ClockVictimTracker(VictimTracker):
    """CLOCK (second-chance) victim selection.

    Section 5.2 of the paper names CLOCK as the kind of LRU
    approximation whose extra state the tagless design avoids; this
    implementation lets the Figure 11 ablation measure a third point
    between FIFO and LRU.  One reference bit per page, set on touch;
    the hand gives referenced pages a second chance.
    """

    def __init__(self) -> None:
        self._ring: deque = deque()
        self._referenced: dict = {}
        self.skips = 0

    def on_fill(self, cache_page: int) -> None:
        self._ring.append(cache_page)
        self._referenced[cache_page] = False

    def on_touch(self, cache_page: int) -> None:
        if cache_page in self._referenced:
            self._referenced[cache_page] = True

    def on_evicted(self, cache_page: int) -> None:
        self._referenced.pop(cache_page, None)

    def select(self, protected: ProtectedFn) -> Optional[int]:
        # Two sweeps suffice: the first clears reference bits, the
        # second finds an unreferenced, unprotected page (unless all
        # live pages are protected).
        for _ in range(2 * len(self._ring)):
            if not self._ring:
                return None
            candidate = self._ring.popleft()
            if candidate not in self._referenced:
                continue  # stale: already evicted
            if protected(candidate):
                self.skips += 1
                self._ring.append(candidate)
                continue
            if self._referenced[candidate]:
                self._referenced[candidate] = False
                self._ring.append(candidate)
                continue
            del self._referenced[candidate]
            return candidate
        return None

    def __len__(self) -> int:
        return len(self._referenced)

    def tracked_pages(self):
        return tuple(self._referenced)


def make_victim_tracker(name: str) -> VictimTracker:
    """Instantiate a victim policy by config name ("fifo", "lru" or
    "clock")."""
    if name == "fifo":
        return FIFOVictimTracker()
    if name == "lru":
        return LRUVictimTracker()
    if name == "clock":
        return ClockVictimTracker()
    raise SimulationError(f"unknown victim policy {name!r}")
