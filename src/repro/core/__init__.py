"""The paper's contribution: the tagless, fully associative DRAM cache.

Components map one-to-one onto Figure 3 of the paper:

- :class:`repro.core.ctlb.CacheMapTLB` -- the cTLB, a conventional TLB
  whose entries hold virtual-to-**cache** mappings (plus the NC bit);
- :class:`repro.core.gipt.GlobalInvertedPageTable` -- cache-to-physical
  mappings, PTE pointers and per-core TLB-residence bits;
- :class:`repro.core.free_queue.FreeQueue` -- the FIFO of blocks awaiting
  asynchronous eviction, plus the header-pointer free pool;
- :mod:`repro.core.policies` -- FIFO (with TLB-residence skipping) and LRU
  victim selection (Figure 11);
- :class:`repro.core.miss_handler.CTLBMissHandler` -- the extended TLB
  miss handler of Figure 4;
- :class:`repro.core.tagless_cache.TaglessCacheEngine` -- ties the above
  together and owns all timing/energy charging for the tagless design.
"""

from repro.core.ctlb import CacheMapTLB
from repro.core.free_queue import FreeQueue
from repro.core.gipt import GIPTEntry, GlobalInvertedPageTable
from repro.core.miss_handler import CTLBMissHandler, MissOutcome
from repro.core.policies import (
    FIFOVictimTracker,
    LRUVictimTracker,
    VictimTracker,
    make_victim_tracker,
)
from repro.core.tagless_cache import TaglessCacheEngine

__all__ = [
    "CacheMapTLB",
    "FreeQueue",
    "GIPTEntry",
    "GlobalInvertedPageTable",
    "CTLBMissHandler",
    "MissOutcome",
    "FIFOVictimTracker",
    "LRUVictimTracker",
    "VictimTracker",
    "make_victim_tracker",
    "TaglessCacheEngine",
]
