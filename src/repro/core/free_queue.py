"""Free queue and header-pointer free pool (Section 3.2, Figure 3).

Two cooperating pieces keep cache fills off the eviction critical path:

- the **free pool**: cache blocks with no valid data, consumed by the
  header pointer (HP) at fills.  The design invariant is that at least
  ``alpha`` blocks are free at any instant, so a fill never waits for a
  victim to drain;
- the **free queue**: a FIFO of cache addresses whose eviction has been
  *decided* but not yet performed.  A background process drains it --
  writing dirty pages back and rewriting PTEs -- asynchronously.

In the simulator the drain happens eagerly (state-wise) while its costs
are charged as background bus/energy traffic, which is exactly the
observable behaviour of the paper's asynchronous eviction.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.errors import SimulationError


class FreeQueue:
    """FIFO of cache pages pending eviction, plus the free-block pool."""

    def __init__(self, capacity_pages: int, alpha: int = 1):
        if alpha < 1:
            raise ValueError("alpha must be >= 1")
        if capacity_pages <= alpha:
            raise ValueError(
                f"cache of {capacity_pages} pages cannot reserve "
                f"alpha={alpha} free blocks"
            )
        self.capacity_pages = capacity_pages
        self.alpha = alpha
        # All blocks start free; HP walks them in address order first time
        # around, matching the paper's incrementing header pointer.
        self._free: Deque[int] = deque(range(capacity_pages))
        self._pending: Deque[int] = deque()
        self.allocations = 0
        self.evictions_enqueued = 0
        self.evictions_completed = 0

    # ------------------------------------------------------------------
    # Header-pointer side
    # ------------------------------------------------------------------
    @property
    def header_pointer(self) -> Optional[int]:
        """The next cache page a fill will receive (None if exhausted)."""
        return self._free[0] if self._free else None

    def allocate(self) -> int:
        """Hand the HP block to a fill and advance the pointer."""
        if not self._free:
            raise SimulationError(
                "cache fill found no free block: the alpha invariant was "
                "violated (victim selection could not find an evictable "
                "page -- is the cache smaller than total TLB reach?)"
            )
        self.allocations += 1
        return self._free.popleft()

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def needs_eviction(self) -> bool:
        """True when the pool has dropped below alpha free blocks."""
        return len(self._free) < self.alpha

    # ------------------------------------------------------------------
    # Eviction side
    # ------------------------------------------------------------------
    def enqueue_eviction(self, cache_page: int) -> None:
        """Queue a victim for the asynchronous eviction process."""
        self._pending.append(cache_page)
        self.evictions_enqueued += 1

    def pop_pending(self) -> Optional[int]:
        """Take the oldest queued victim (the background drain)."""
        if not self._pending:
            return None
        return self._pending.popleft()

    def mark_free(self, cache_page: int) -> None:
        """Return a fully evicted block to the free pool."""
        if not (0 <= cache_page < self.capacity_pages):
            raise SimulationError(
                f"freeing CA {cache_page:#x} outside the cache"
            )
        self._free.append(cache_page)
        self.evictions_completed += 1

    @property
    def pending_evictions(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Introspection (validation support; no simulation side effects)
    # ------------------------------------------------------------------
    def free_pages(self) -> tuple:
        """Snapshot of the free pool, HP first."""
        return tuple(self._free)

    def pending_pages(self) -> tuple:
        """Snapshot of the eviction queue, oldest first."""
        return tuple(self._pending)

    def stats(self, prefix: str = "") -> dict:
        return {
            f"{prefix}allocations": float(self.allocations),
            f"{prefix}evictions_enqueued": float(self.evictions_enqueued),
            f"{prefix}evictions_completed": float(self.evictions_completed),
            f"{prefix}free_blocks": float(len(self._free)),
            f"{prefix}pending": float(len(self._pending)),
        }
