#!/usr/bin/env python3
"""Multi-programmed mix study: four SPEC programs sharing one machine.

Runs one of the paper's Table 5 mixes on all five designs and prints a
per-core breakdown: each program keeps its own address space and TLBs
while contending for the shared DRAM cache and memory channels -- the
setting the paper uses for its sensitivity studies (Section 5.2).

Run:  python examples/multiprogrammed_mix.py [MIX1]
"""

import sys

from repro import BoundTrace, DESIGN_NAMES, Simulator, default_system
from repro.analysis.report import format_table
from repro.workloads.mixes import MIX_ORDER, mix_traces


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MIX1"
    if mix not in MIX_ORDER:
        raise SystemExit(f"unknown mix {mix!r}; choose from {MIX_ORDER}")

    config = default_system(cache_megabytes=1024, num_cores=4,
                            capacity_scale=64)
    traces = mix_traces(mix, accesses_per_program=60_000, capacity_scale=64)
    bindings = [
        BoundTrace(core_id=i, process_id=i, trace=t)
        for i, t in enumerate(traces)
    ]
    simulator = Simulator(config)

    results = {name: simulator.run(name, bindings) for name in DESIGN_NAMES}
    baseline = results["no-l3"]

    rows = []
    for name, result in results.items():
        row = [name, result.ipc_sum / baseline.ipc_sum]
        row.extend(core.ipc for core in result.cores)
        row.append(result.edp / baseline.edp)
        rows.append(row)

    programs = [t.name for t in traces]
    print(format_table(
        f"{mix} on all designs (IPC normalised to No-L3; EDP likewise)",
        ["design", "norm IPC"] + [f"core{i}:{p}"
                                  for i, p in enumerate(programs)]
        + ["norm EDP"],
        rows,
    ))

    tagless = results["tagless"]
    print()
    print("tagless engine under contention:")
    print(f"  fills          : {tagless.stats['engine_fills']:.0f}")
    print(f"  victim hits    : {tagless.stats['engine_victim_hits']:.0f}")
    print(f"  write-backs    : {tagless.stats['engine_writebacks']:.0f}")
    print(f"  cache occupancy: {tagless.stats['engine_occupancy']:.2f}")


if __name__ == "__main__":
    main()
