#!/usr/bin/env python3
"""Capacity sweep: when does a DRAM cache stop paying off?

Reproduces the Figure 10 experiment interactively on a single mix:
sweeps the in-package DRAM cache from 128 MB to 1 GB and compares the
SRAM-tag and tagless designs against the OS-oblivious bank-interleaving
(BI) configuration.  Below the crossover the page-granularity caches
*lose* to BI -- coarse-grained thrashing moves whole 4 KB pages back
and forth -- and above it the tagless design's cheap hits win.

Run:  python examples/capacity_sweep.py [MIX5]
"""

import sys

from repro import BoundTrace, Simulator, default_system
from repro.analysis.report import format_table
from repro.workloads.mixes import MIX_ORDER, mix_traces


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MIX5"
    if mix not in MIX_ORDER:
        raise SystemExit(f"unknown mix {mix!r}; choose from {MIX_ORDER}")

    traces = mix_traces(mix, accesses_per_program=50_000, capacity_scale=64)
    bindings = [
        BoundTrace(core_id=i, process_id=i, trace=t)
        for i, t in enumerate(traces)
    ]
    print(f"{mix}: " + ", ".join(t.name for t in traces))
    print("per-program footprints: "
          + ", ".join(str(t.footprint_pages) for t in traces)
          + " pages (scaled)")
    print()

    rows = []
    for cache_mb in (128, 256, 512, 1024):
        config = default_system(cache_megabytes=cache_mb, num_cores=4,
                                capacity_scale=64)
        simulator = Simulator(config)
        ipc = {
            name: simulator.run(name, bindings).ipc_sum
            for name in ("bi", "sram", "tagless")
        }
        rows.append([
            f"{cache_mb}MB",
            config.cache_pages,
            ipc["sram"] / ipc["bi"],
            ipc["tagless"] / ipc["bi"],
            "caches lose" if ipc["tagless"] < ipc["bi"] else "caches win",
        ])

    print(format_table(
        f"IPC normalised to bank-interleaving ({mix})",
        ["cache", "pages", "sram-tag", "tagless", "verdict"],
        rows,
    ))
    print()
    print("Reading the table: below the crossover capacity, page "
          "migration thrashes (Figure 10's 256 MB point); above it, the "
          "tagless cache turns almost every L2 miss into a cheap "
          "in-package hit.")


if __name__ == "__main__":
    main()
