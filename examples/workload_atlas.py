#!/usr/bin/env python3
"""Workload atlas: the memory character of every synthetic program.

The reproduction's workload substitution stands or falls on whether the
generated traces actually behave like the programs they model.  This
example measures every SPEC and PARSEC model with the trace-analysis
toolkit and prints the atlas: footprints, access intensity, page reuse,
singleton share, hot-set concentration, spatial density and page
transitions -- the knobs that drive every figure in the paper.

Run:  python examples/workload_atlas.py
"""

from repro.workloads.analysis import (
    character_table,
    characterize,
    reuse_histogram,
    working_set_curve,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.parsec import PARSEC_ORDER, parsec_profile
from repro.workloads.spec import SPEC_ORDER, spec_profile


def main() -> None:
    characters = []
    for name in SPEC_ORDER:
        trace = TraceGenerator(
            spec_profile(name), capacity_scale=64
        ).generate(60_000)
        characters.append(characterize(trace))
    for name in PARSEC_ORDER:
        trace = TraceGenerator(
            parsec_profile(name), capacity_scale=64
        ).generate(60_000)
        characters.append(characterize(trace))
    print(character_table(characters))

    # Zoom in on the two programs the paper singles out.
    print()
    for name in ("GemsFDTD", "sphinx3"):
        trace = TraceGenerator(
            spec_profile(name), capacity_scale=64
        ).generate(60_000)
        hist = reuse_histogram(trace)
        print(f"{name} page-reuse histogram (pages per access-count "
              "bucket):")
        print("  " + "  ".join(f"{k}:{v}" for k, v in hist.items()))
        curve = working_set_curve(trace, num_points=5)
        print(f"{name} working-set ramp: "
              + " -> ".join(f"{t}p@{n}acc" for n, t in curve))
        print()

    print("Reading the atlas: GemsFDTD/milc combine a hot set with a "
          "large low-reuse tail (their Figure 7 gap to the ideal "
          "cache); libquantum/lbm are almost pure streams "
          "(page-granularity heaven); mcf/omnetpp are pointer chasers "
          "(low spatial density); swaptions barely touches memory.")


if __name__ == "__main__":
    main()
