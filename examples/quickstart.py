#!/usr/bin/env python3
"""Quickstart: simulate one workload on the tagless DRAM cache.

Builds the paper's Table 3 machine (scaled for fast simulation),
generates a synthetic trace modelled on 429.mcf, runs it through the
tagless design and the No-L3 baseline, and prints the headline metrics:
IPC speedup, average L3 latency, DRAM-cache behaviour and the energy
breakdown.

Run:  python examples/quickstart.py
"""

from repro import BoundTrace, Simulator, default_system
from repro.workloads import TraceGenerator, spec_profile


def main() -> None:
    # 1. A machine: 4 OoO cores, 1 GB in-package DRAM cache, 8 GB DDR3.
    #    capacity_scale shrinks capacities and footprints together so a
    #    pure-Python run finishes in seconds.
    config = default_system(cache_megabytes=1024, num_cores=1,
                            capacity_scale=64)
    print(f"cache: {config.cache_pages} pages of 4 KB (scaled 1/"
          f"{config.capacity_scale} from 1 GB)")

    # 2. A workload: the mcf model -- pointer chasing over a large,
    #    skewed working set.
    profile = spec_profile("mcf")
    trace = TraceGenerator(profile, capacity_scale=64).generate(60_000)
    print(f"trace: {len(trace)} accesses over {trace.footprint_pages} "
          f"pages, {trace.accesses_per_kilo_instruction:.1f} accesses "
          "per kilo-instruction")

    # 3. Simulate the baseline and the tagless cache.
    simulator = Simulator(config)
    bindings = [BoundTrace(core_id=0, process_id=0, trace=trace)]
    baseline = simulator.run("no-l3", bindings)
    tagless = simulator.run("tagless", bindings)

    # 4. Headline metrics.
    speedup = tagless.ipc_sum / baseline.ipc_sum
    print()
    print(f"No-L3 IPC    : {baseline.ipc_sum:.3f}")
    print(f"tagless IPC  : {tagless.ipc_sum:.3f}  "
          f"({(speedup - 1) * 100:+.1f}%)")
    print(f"avg L3 latency: {baseline.mean_l3_latency_cycles:.1f} -> "
          f"{tagless.mean_l3_latency_cycles:.1f} cycles")
    print(f"EDP          : {baseline.edp:.3e} -> {tagless.edp:.3e} J*s "
          f"({(1 - tagless.edp / baseline.edp) * 100:.1f}% lower)")

    # 5. A look inside the tagless engine.
    stats = tagless.stats
    print()
    print("tagless cache internals:")
    print(f"  cache fills (TLB-miss path) : {stats['engine_fills']:.0f}")
    print(f"  in-package victim hits      : {stats['engine_victim_hits']:.0f}")
    print(f"  dirty page write-backs      : {stats['engine_writebacks']:.0f}")
    print(f"  GIPT storage                : "
          f"{stats['engine_gipt_storage_bytes'] / 1024:.0f} KB "
          "(the design's only new structure)")
    print(f"  energy in tags              : "
          f"{tagless.energy.tag_j:.3e} J (zero by construction)")


if __name__ == "__main__":
    main()
