#!/usr/bin/env python3
"""Analytic AMAT explorer: Equations 1-5 without running a simulation.

The paper's average-memory-access-time model makes the design trade-off
explicit: the SRAM-tag cache pays ``AccessTime_SRAM-tag`` on *every* L3
access, while the tagless cache moves all management cost into the cTLB
miss penalty (Equation 5).  This example sweeps the two rates that
govern the trade-off -- the cTLB miss rate and the victim miss rate --
and prints where each design wins.

Run:  python examples/amat_model_explorer.py
"""

import dataclasses

from repro.analysis.amat import (
    AMATInputs,
    amat_sram_tag,
    amat_tagless,
    tagless_advantage,
)
from repro.analysis.report import format_table
from repro.common.config import default_system


def baseline_inputs() -> AMATInputs:
    """Parameter point derived from the Table 3/4/6 machine."""
    cfg = default_system()
    block_in = cfg.core.cycles_from_ns(
        cfg.in_package.row_empty_ns(64) + cfg.in_package.controller_ns
    )
    page_off = cfg.core.cycles_from_ns(
        cfg.off_package.row_empty_ns(64) + cfg.off_package.controller_ns
    )
    return AMATInputs(
        tlb_miss_rate=0.03,
        tlb_miss_penalty=float(cfg.tlb.walk_cycles),
        l12_hit_time=4.0,
        l12_miss_rate=0.35,
        tag_time=float(cfg.sram_tag.access_cycles),
        block_time_in_pkg=block_in,
        page_time_off_pkg=page_off,
        l3_miss_rate=0.03,
        victim_miss_rate=0.15,
        gipt_time=40.0,
    )


def main() -> None:
    base = baseline_inputs()
    print(f"Machine point: tag check {base.tag_time:.0f} cycles, "
          f"in-package block {base.block_time_in_pkg:.0f} cycles, "
          f"page fill critical block {base.page_time_off_pkg:.0f} cycles")
    print(f"AMAT SRAM-tag : {amat_sram_tag(base):6.2f} cycles")
    print(f"AMAT tagless  : {amat_tagless(base):6.2f} cycles")
    print()

    rows = []
    for tlb_miss in (0.01, 0.03, 0.06, 0.12, 0.25):
        row = [f"{tlb_miss:.2f}"]
        for victim_miss in (0.0, 0.2, 0.5, 1.0):
            point = dataclasses.replace(
                base, tlb_miss_rate=tlb_miss, victim_miss_rate=victim_miss
            )
            advantage = tagless_advantage(point)
            row.append(f"{advantage:+.1f}")
        rows.append(row)

    print(format_table(
        "Tagless AMAT advantage in cycles (positive = tagless wins) "
        "by cTLB miss rate (rows) and victim miss rate (columns)",
        ["cTLB miss", "vm=0.0", "vm=0.2", "vm=0.5", "vm=1.0"],
        rows,
    ))
    print()
    print("The victim cache is what keeps the tagless design safe: even "
          "with a high cTLB miss rate, most misses land on still-cached "
          "pages (victim hits) and cost only the walk.  Only when both "
          "rates are high does fill-at-TLB-miss overtake the per-access "
          "tag check it eliminated.")


if __name__ == "__main__":
    main()
