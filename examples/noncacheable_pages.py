#!/usr/bin/env python3
"""Non-cacheable pages: software-managed caching policy (Section 5.4).

The tagless design keeps the entire caching policy in the TLB miss
handler, so software can flag pages as non-cacheable (NC) and they
bypass the DRAM cache entirely.  The paper's case study profiles
459.GemsFDTD, flags every page with fewer than 32 accesses -- pages
where under half of the 64 blocks are ever touched -- and gains 7.1 %
IPC from reduced over-fetching.

This example reruns that study end-to-end and sweeps the profiling
threshold, showing how the benefit varies with classification
aggressiveness.

Run:  python examples/noncacheable_pages.py
"""

from repro import BoundTrace, Simulator, default_system
from repro.analysis.report import format_table
from repro.workloads import TraceGenerator, spec_profile


def main() -> None:
    config = default_system(cache_megabytes=1024, num_cores=1,
                            capacity_scale=64)
    trace = TraceGenerator(
        spec_profile("GemsFDTD"), capacity_scale=64
    ).generate(150_000)
    bindings = [BoundTrace(core_id=0, process_id=0, trace=trace)]
    simulator = Simulator(config)

    # Offline profiling pass: how often is each page touched?
    counts = trace.page_access_counts()
    print(f"GemsFDTD model: {len(counts)} pages touched, "
          f"{sum(1 for c in counts.values() if c < 32)} of them with "
          "fewer than 32 accesses (singleton-ish)")
    print()

    baseline = simulator.run("tagless", bindings)
    rows = [["(none)", 0, baseline.ipc_sum, "",
             baseline.stats["engine_fills"]]]
    for threshold in (8, 32, 128):
        nc_pages = [p for p, c in counts.items() if c < threshold]
        result = simulator.run("tagless", bindings,
                               non_cacheable={0: nc_pages})
        gain = (result.ipc_sum / baseline.ipc_sum - 1.0) * 100.0
        rows.append([
            f"< {threshold}", len(nc_pages), result.ipc_sum,
            f"{gain:+.1f}%", result.stats["engine_fills"],
        ])

    print(format_table(
        "Tagless IPC vs NC-classification threshold (GemsFDTD)",
        ["threshold", "NC pages", "IPC", "gain", "cache fills"],
        rows,
    ))
    print()
    print("Flagging low-reuse pages NC avoids 4 KB fills for data that "
          "will never be reused, freeing off-package bandwidth; but an "
          "over-aggressive threshold pushes genuinely reusable pages "
          "off the fast path.")


if __name__ == "__main__":
    main()
