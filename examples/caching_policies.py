#!/usr/bin/env python3
"""Pluggable caching policies: the tagless design's software advantage.

Section 3.5 of the paper argues that because all cache management lives
in the TLB miss handler, caching *policy* becomes a software decision.
This example runs GemsFDTD (high MPKI, many low-reuse pages) under three
policies plugged into the very same handler:

- always-cache (the paper's evaluated default);
- an offline profile that pins low-reuse pages non-cacheable
  (the Section 5.4 case study, productised);
- an online CHOP-style touch-count filter that needs no profile.

Run:  python examples/caching_policies.py
"""

from repro import BoundTrace, Simulator, default_system
from repro.analysis.report import format_table
from repro.policy import (
    AlwaysCachePolicy,
    StaticProfilePolicy,
    TouchCountFilterPolicy,
)
from repro.workloads import TraceGenerator, spec_profile


def main() -> None:
    config = default_system(cache_megabytes=1024, num_cores=1,
                            capacity_scale=64)
    trace = TraceGenerator(
        spec_profile("GemsFDTD"), capacity_scale=64
    ).generate(120_000)
    bindings = [BoundTrace(core_id=0, process_id=0, trace=trace)]
    simulator = Simulator(config)

    policies = {
        "always-cache": AlwaysCachePolicy(),
        "offline profile (<32)": StaticProfilePolicy.from_traces(
            {0: trace}, threshold=32
        ),
        "online touch filter (2)": TouchCountFilterPolicy(
            threshold=2, decay_interval_ns=5e5
        ),
    }

    rows = []
    for name, policy in policies.items():
        result = simulator.run("tagless", bindings, caching_policy=policy)
        stats = result.stats
        rows.append([
            name,
            result.ipc_sum,
            stats["engine_fills"],
            stats["offpkg_read_bytes"] / 1e6,
            stats.get("policy_bypasses", 0)
            + stats.get("policy_pinned", 0),
        ])

    print(format_table(
        "GemsFDTD under three caching policies (same handler, same "
        "hardware)",
        ["policy", "IPC", "cache fills", "off-pkg reads (MB)",
         "bypassed/pinned decisions"],
        rows,
    ))
    print()
    print("The offline profile avoids filling pages that will never "
          "earn their 4 KB transfer; the online filter gets most of "
          "that benefit with no profiling pass, at the cost of serving "
          "each page's first TLB window from off-package DRAM.")


if __name__ == "__main__":
    main()
