"""Legacy setuptools shim.

All metadata lives in pyproject.toml.  This file exists so that fully
offline environments -- where pip's PEP 517 editable path fails for lack
of the ``wheel`` package -- can still do a development install with::

    python setup.py develop --user

(Or simply ``export PYTHONPATH=src``; the repository needs no build step.)
"""

from setuptools import setup

setup()
