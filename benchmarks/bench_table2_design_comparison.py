"""Table 2, quantified: the design-requirement comparison.

The paper's Table 2 rates page-based-with-SRAM-tags vs tagless
qualitatively (tag storage, hit ratio, hit latency, row-buffer locality,
over-fetching).  This benchmark measures each criterion on a live run of
a representative workload so the qualitative table becomes numbers:

- tag storage: on-die SRAM bytes dedicated to tags;
- hit ratio: DRAM-cache hits / L3 accesses;
- hit latency: the Figure 8 metric;
- row-buffer locality: in-package row-hit rate of page streams;
- over-fetching: off-package bytes moved per L3 demand access.
"""

from conftest import bench_accesses

from repro.analysis.report import format_table
from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile


def measure_designs():
    config = default_system(cache_megabytes=1024, num_cores=1,
                            capacity_scale=64)
    trace = TraceGenerator(
        spec_profile("milc"), capacity_scale=64
    ).generate(bench_accesses(80_000))
    sim = Simulator(config)
    rows = []
    metrics = {}
    for design_name in ("sram", "tagless"):
        result = sim.run(design_name, [BoundTrace(0, 0, trace)])
        s = result.stats
        l3 = max(s["l3_accesses"], 1.0)
        if design_name == "sram":
            tag_mb = config.sram_tag.tag_megabytes
            hits = s["l3_hits"]
            misses = s["l3_misses"]
        else:
            tag_mb = 0.0
            hits = s["cache_accesses"]
            misses = s["engine_fills"]
        hit_ratio = hits / max(hits + misses, 1.0)
        overfetch = (s["offpkg_read_bytes"] + s["offpkg_write_bytes"]) / l3
        metrics[design_name] = {
            "tag_mb": tag_mb,
            "hit_ratio": hit_ratio,
            "l3_latency": result.mean_l3_latency_cycles,
            "overfetch": overfetch,
        }
        rows.append([
            design_name,
            f"{tag_mb:.1f}MB",
            f"{hit_ratio:.4f}",
            f"{result.mean_l3_latency_cycles:.1f}cy",
            f"{overfetch:.0f}B",
        ])
    table = format_table(
        "Table 2 (quantified): SRAM-tag vs tagless on milc",
        ["design", "tag SRAM", "hit ratio", "avg L3 latency",
         "off-pkg bytes / L3 access"],
        rows,
    )
    return table, metrics


def test_table2_design_comparison(benchmark, record_table):
    table, metrics = benchmark.pedantic(measure_designs, rounds=1,
                                        iterations=1)
    record_table("table2", table)
    # "Small tag storage: best" -- zero for tagless.
    assert metrics["tagless"]["tag_mb"] == 0.0
    assert metrics["sram"]["tag_mb"] == 4.0
    # "High hit ratio: best" -- fully associative >= 16-way.
    assert (metrics["tagless"]["hit_ratio"]
            >= metrics["sram"]["hit_ratio"] - 0.01)
    # "Low hit latency: best" -- no tag check on the access path.
    assert metrics["tagless"]["l3_latency"] < metrics["sram"]["l3_latency"]
