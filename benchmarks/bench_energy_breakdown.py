"""Energy breakdown behind Figure 7b/9b: where each design's joules go.

The EDP results rest on component energies; this benchmark prints the
full per-component breakdown for one representative workload so the
"zero energy waste for cache tags" claim (abstract) is visible as a
line item rather than an aggregate.
"""

from conftest import bench_accesses

from repro.analysis.report import format_table
from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.designs.registry import DESIGN_NAMES
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile


def run_breakdown():
    config = default_system(cache_megabytes=1024, num_cores=1,
                            capacity_scale=64)
    trace = TraceGenerator(
        spec_profile("milc"), capacity_scale=64
    ).generate(bench_accesses(80_000))
    bindings = [BoundTrace(0, 0, trace)]
    sim = Simulator(config)
    rows = []
    breakdowns = {}
    for design in DESIGN_NAMES:
        result = sim.run(design, bindings)
        e = result.energy
        breakdowns[design] = e
        rows.append([
            design,
            e.core_j * 1e3,
            (e.ondie_dynamic_j + e.ondie_leakage_j) * 1e3,
            e.tag_j * 1e3,
            e.in_package_j * 1e3,
            e.off_package_j * 1e3,
            e.total_j * 1e3,
            result.elapsed_ns / 1e6,
        ])
    table = format_table(
        "Energy breakdown on milc (millijoules; time in ms)",
        ["design", "cores", "on-die SRAM", "tag array", "in-pkg DRAM",
         "off-pkg DRAM", "total", "runtime"],
        rows,
    )
    return table, breakdowns


def test_energy_breakdown(benchmark, record_table):
    table, breakdowns = benchmark.pedantic(run_breakdown, rounds=1,
                                           iterations=1)
    record_table("energy_breakdown", table)
    # The abstract's claim, as a line item: only the SRAM-tag design
    # burns tag energy.
    assert breakdowns["sram"].tag_j > 0
    for design in ("no-l3", "bi", "tagless", "ideal"):
        assert breakdowns[design].tag_j == 0.0
    # Every design moves energy: totals are positive and finite.
    for design, e in breakdowns.items():
        assert e.total_j > 0
    # The tagless design spends less total energy than the SRAM-tag
    # design on this workload (faster run + no tag power).
    assert breakdowns["tagless"].total_j < breakdowns["sram"].total_j