"""Ablation: the free-block budget alpha (Section 3.1 / Figure 3).

The paper keeps alpha = 1 free block so that a cache fill never waits
for an eviction.  This ablation sweeps alpha: larger budgets trade
usable cache capacity for slack in the asynchronous evictor.  The
expectation -- and the design argument for alpha = 1 -- is that the IPC
curve is nearly flat: the free queue hides eviction latency already,
so extra free blocks only shrink the cache.
"""

import dataclasses

from conftest import bench_accesses

from repro.analysis.report import format_table
from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.workloads.mixes import mix_traces


def run_alpha_sweep():
    accesses = bench_accesses(50_000)
    traces = mix_traces("MIX5", accesses_per_program=accesses,
                        capacity_scale=64)
    bindings = [BoundTrace(i, i, t) for i, t in enumerate(traces)]
    rows = []
    ipcs = {}
    for alpha in (1, 4, 16, 64):
        config = default_system(cache_megabytes=512, num_cores=4,
                                capacity_scale=64)
        config = dataclasses.replace(
            config,
            dram_cache=dataclasses.replace(config.dram_cache, alpha=alpha),
        )
        result = Simulator(config).run("tagless", bindings)
        ipcs[alpha] = result.ipc_sum
        rows.append([
            alpha,
            result.ipc_sum,
            result.stats["engine_fills"],
            result.stats["engine_fq_evictions_completed"],
            result.stats["engine_alpha_deficits"],
        ])
    table = format_table(
        "Ablation: free-block budget alpha (tagless, MIX5, 512MB cache)",
        ["alpha", "IPC", "fills", "evictions", "alpha deficits"],
        rows,
    )
    return table, ipcs


def test_ablation_alpha(benchmark, record_table):
    table, ipcs = benchmark.pedantic(run_alpha_sweep, rounds=1,
                                     iterations=1)
    record_table("ablation_alpha", table)
    # alpha=1 suffices: growing the free pool never helps by much.
    assert ipcs[64] <= ipcs[1] * 1.05
    assert min(ipcs.values()) >= max(ipcs.values()) * 0.85
