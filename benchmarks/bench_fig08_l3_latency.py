"""Figure 8: average L3 access latency, SRAM-tag vs tagless.

Paper: the tagless cache is consistently lower thanks to the deleted
tag check -- up to 16.7 % for 462.libquantum, 9.9 % geomean reduction.
"""

from conftest import bench_accesses, bench_harness

from repro.analysis.experiments import run_single_programmed


def run_figure8():
    return run_single_programmed(
        accesses=bench_accesses(100_000),
        designs=("no-l3", "sram", "tagless"),
        harness=bench_harness(),
    )


def test_fig08_l3_latency(benchmark, record_table):
    result = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    record_table("fig08", result.l3_latency_table())

    # Tagless must be lower for every single program (paper:
    # "consistently yields lower latency").
    for program in result.programs:
        assert (result.l3_latency(program, "tagless")
                < result.l3_latency(program, "sram")), program
