"""Figure 7: IPC and EDP of 11 single-programmed SPEC CPU 2006 programs
across the five designs, normalised to No-L3.

Paper's headline numbers for this figure: BI +4.0 % IPC, SRAM-tag
+16.4 %, tagless +24.9 % (within 11.8 % of ideal); tagless beats
SRAM-tag on EDP by 26.5 %.  The *shape* asserted below: strict design
ordering on the geomean and a large tagless EDP win.
"""

from conftest import bench_accesses, bench_harness

from repro.analysis.experiments import run_single_programmed


def run_figure7():
    return run_single_programmed(accesses=bench_accesses(100_000),
                                 harness=bench_harness())


def test_fig07_spec_ipc_edp(benchmark, record_table):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    record_table("fig07", result.ipc_table(), result.edp_table())

    # Shape checks (the paper's ordering, not its absolute numbers).
    gm = {d: result.geomean_ipc(d) for d in result.designs}
    assert gm["no-l3"] < gm["bi"] < gm["sram"] < gm["tagless"] <= gm["ideal"]
    edp = {d: result.geomean_edp(d) for d in result.designs}
    assert edp["tagless"] < edp["sram"] < edp["no-l3"]
    # BI is a small improvement (paper: ~4 %).
    assert 1.0 < gm["bi"] < 1.12
