"""Ablation: victim-selection policy, extended beyond Figure 11.

Figure 11 compares FIFO and LRU; this ablation adds CLOCK (the
second-chance approximation Section 5.2 alludes to) and runs at a
*smaller* cache (512 MB) where replacement actually matters, unlike the
1 GB point where all policies coincide.
"""

from conftest import bench_accesses

from repro.analysis.report import format_table
from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.workloads.mixes import mix_traces


def run_policy_sweep():
    accesses = bench_accesses(50_000)
    rows = []
    ipcs = {}
    for mix in ("MIX3", "MIX5"):
        traces = mix_traces(mix, accesses_per_program=accesses,
                            capacity_scale=64)
        bindings = [BoundTrace(i, i, t) for i, t in enumerate(traces)]
        row = [mix]
        for policy in ("fifo", "clock", "lru"):
            config = default_system(cache_megabytes=512, num_cores=4,
                                    replacement=policy, capacity_scale=64)
            result = Simulator(config).run("tagless", bindings)
            ipcs[(mix, policy)] = result.ipc_sum
            row.append(result.ipc_sum)
        rows.append(row)
    table = format_table(
        "Ablation: tagless victim policy at 512MB (IPC; replacement "
        "pressure visible)",
        ["mix", "fifo", "clock", "lru"],
        rows,
    )
    return table, ipcs


def test_ablation_victim_policy(benchmark, record_table):
    table, ipcs = benchmark.pedantic(run_policy_sweep, rounds=1,
                                     iterations=1)
    record_table("ablation_victim_policy", table)
    for mix in ("MIX3", "MIX5"):
        fifo = ipcs[(mix, "fifo")]
        for policy in ("clock", "lru"):
            # Smarter policies may win under pressure but FIFO must stay
            # competitive (the paper's argument for its simplicity).
            assert ipcs[(mix, policy)] >= fifo * 0.9
