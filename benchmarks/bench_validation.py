"""End-to-end validation: every headline claim graded in one run.

Wraps :func:`repro.analysis.validate.run_validation` -- the same harness
behind ``python -m repro.cli validate`` -- as a benchmark, so the full
claim scorecard regenerates alongside the figures.
"""

from conftest import bench_accesses

from repro.analysis.validate import run_validation


def run():
    single = bench_accesses(40_000)
    return run_validation(
        single_accesses=single,
        mix_accesses=max(10_000, single * 3 // 4),
    )


def test_validation_scorecard(benchmark, record_table):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("validation", report.table())
    failed = [r.claim_id for r in report.results if not r.passed]
    assert report.passed, f"failed claims: {failed}"
