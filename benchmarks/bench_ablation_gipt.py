"""Ablation: GIPT placement and update cost (Sections 3.2 and 3.4).

The paper states the GIPT "can be placed in either in-package or
off-package DRAM" because it is touched only at TLB misses and
evictions, and it charges each fill a conservative two full memory
writes.  This ablation measures both claims:

- placement: off-package (default) vs in-package GIPT;
- the size claim: storage bytes vs cache capacity (the <0.25 % line).
"""

import dataclasses

from conftest import bench_accesses

from repro.analysis.report import format_table
from repro.common.addressing import BYTES_PER_MB
from repro.common.config import default_system
from repro.core.gipt import gipt_storage_megabytes
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile


def run_gipt_study():
    accesses = bench_accesses(80_000)
    trace = TraceGenerator(
        spec_profile("GemsFDTD"), capacity_scale=64
    ).generate(accesses)
    bindings = [BoundTrace(0, 0, trace)]

    rows = []
    ipcs = {}
    for label, in_package in (("off-package", False), ("in-package", True)):
        config = default_system(cache_megabytes=1024, num_cores=1,
                                capacity_scale=64)
        config = dataclasses.replace(
            config,
            dram_cache=dataclasses.replace(
                config.dram_cache, gipt_in_package=in_package
            ),
        )
        result = Simulator(config).run("tagless", bindings)
        ipcs[label] = result.ipc_sum
        rows.append([label, result.ipc_sum,
                     result.mean_l3_latency_cycles])
    placement_table = format_table(
        "Ablation: GIPT placement (GemsFDTD, tagless)",
        ["GIPT in", "IPC", "avg L3 latency (cycles)"],
        rows,
    )

    size_rows = []
    for cache_gb in (0.25, 0.5, 1.0, 4.0, 16.0):
        mb = gipt_storage_megabytes(cache_gb)
        overhead = mb * BYTES_PER_MB / (cache_gb * 1024 * BYTES_PER_MB)
        size_rows.append([f"{cache_gb:g}GB", f"{mb:.2f}MB",
                          f"{overhead * 100:.3f}%"])
    size_table = format_table(
        "GIPT storage scaling (82-bit entries, quad-core)",
        ["cache", "GIPT size", "overhead"],
        size_rows,
    )
    return placement_table, size_table, ipcs


def test_ablation_gipt(benchmark, record_table):
    placement, size, ipcs = benchmark.pedantic(run_gipt_study, rounds=1,
                                               iterations=1)
    record_table("ablation_gipt", placement, size)
    # Placement is a wash (the paper's scalability argument): the GIPT
    # is off the access path, so either DRAM works.
    off, in_pkg = ipcs["off-package"], ipcs["in-package"]
    assert abs(off - in_pkg) / off < 0.05
    # The 1 GB point matches Section 3.2's 2.56 MB / <0.26 %.
    assert gipt_storage_megabytes(1.0) == 2.5625
