"""Figure 9: IPC and EDP of the eight multi-programmed mixes (Table 5).

Paper: SRAM-tag +34.9 % and tagless +38.4 % IPC over No-L3; EDP
reductions 31.5 % and 43.5 %; BI only +11.2 %.
"""

from conftest import bench_accesses, bench_harness

from repro.analysis.experiments import run_multi_programmed


def run_figure9():
    return run_multi_programmed(accesses=bench_accesses(70_000),
                                harness=bench_harness())


def test_fig09_mix_ipc_edp(benchmark, record_table):
    result = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    record_table("fig09", result.ipc_table(), result.edp_table())

    gm = {d: result.geomean_ipc(d) for d in result.designs}
    assert gm["no-l3"] < gm["bi"] < gm["sram"] < gm["ideal"]
    assert gm["tagless"] > gm["bi"]          # caches beat OS-oblivious BI
    assert gm["tagless"] > 1.15              # a substantial win over No-L3
    edp = {d: result.geomean_edp(d) for d in result.designs}
    assert edp["tagless"] < edp["sram"] < edp["no-l3"]  # Figure 9b order
