"""Table 1 (and Figure 6): the four (TLB, DRAM cache) latency cases.

Micro-traces force each case through the real tagless design and report
the measured end-to-end cycles, reproducing the table's qualitative
entries: hit/hit has zero penalty, the victim hit costs only the TLB
miss, the NC case costs an off-package block, and the full miss pays
the cache fill + GIPT update.
"""

import dataclasses

from conftest import bench_accesses  # noqa: F401  (uniform import shape)

from repro.analysis.report import format_table
from repro.common.config import default_system
from repro.designs.tagless_design import TaglessDesign


def measure_cases():
    config = dataclasses.replace(
        default_system(cache_megabytes=1024, num_cores=1,
                       capacity_scale=64),
    )
    design = TaglessDesign(config)
    entries = config.scaled_tlb.l2_entries

    # Case 4: TLB miss + cache miss (first touch: fill + GIPT update).
    case4 = design.access(0, 0, 0, 0, False, 0.0).cycles
    # Case 1: TLB hit + cache hit.
    case1 = design.access(0, 0, 0, 1, False, 1_000.0).cycles
    # Case 2: TLB hit + cache miss (NC page).
    design.set_non_cacheable(0, 7)
    design.access(0, 0, 7, 0, False, 2_000.0)
    case2 = design.access(0, 0, 7, 1, False, 3_000.0).cycles
    # Case 3: TLB miss + cache hit (victim hit): push page 0 out of the
    # TLB, then return to it.
    now = 10_000.0
    for i in range(entries + 2):
        design.access(0, 0, 100 + i, 0, False, now)
        now += 1_000.0
    case3 = design.access(0, 0, 0, 2, False, now).cycles

    rows = [
        ["hit", "hit", "cache hit, zero penalty", case1],
        ["hit", "miss", "non-cacheable page, off-package block", case2],
        ["miss", "hit", "in-package victim hit (walk only)", case3],
        ["miss", "miss", "cache fill + GIPT update", case4],
    ]
    table = format_table(
        "Table 1: measured latency of the four memory-access cases "
        "(cycles, tagless design)",
        ["TLB", "DRAM cache", "description", "cycles"],
        rows,
        float_format="{:.1f}",
    )
    return table, (case1, case2, case3, case4)


def test_table1_latency_cases(benchmark, record_table):
    table, (case1, case2, case3, case4) = benchmark.pedantic(
        measure_cases, rounds=1, iterations=1
    )
    record_table("table1", table)
    assert case1 < case3 < case4
    assert case1 < case2 < case4
