"""Ablation: footprint-style partial fills (extension, paper ref [21]).

The paper names footprint caching as the complementary fix for
page-granularity over-fetching.  This ablation measures the extension on
the bandwidth-bound regime where it matters: a small (256 MB) cache
under a four-program mix, where full 4 KB fills saturate the off-package
channel.  Expected trade-off: footprint fills cut off-package read
traffic substantially; IPC improves when the channel is the bottleneck
and the footprint-miss penalty stays small.
"""

import dataclasses

from conftest import bench_accesses

from repro.analysis.report import format_table
from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.workloads.mixes import mix_traces


def run_footprint_study():
    accesses = bench_accesses(50_000)
    traces = mix_traces("MIX5", accesses_per_program=accesses,
                        capacity_scale=64)
    bindings = [BoundTrace(i, i, t) for i, t in enumerate(traces)]
    rows = []
    metrics = {}
    for cache_mb in (256, 512):
        for label, footprint in (("full-fill", False), ("footprint", True)):
            config = default_system(cache_megabytes=cache_mb, num_cores=4,
                                    capacity_scale=64)
            config = dataclasses.replace(
                config,
                dram_cache=dataclasses.replace(
                    config.dram_cache, footprint_caching=footprint
                ),
            )
            result = Simulator(config).run("tagless", bindings)
            read_mb = result.stats["offpkg_read_bytes"] / 1e6
            metrics[(cache_mb, label)] = (result.ipc_sum, read_mb)
            rows.append([
                f"{cache_mb}MB", label, result.ipc_sum, read_mb,
                result.stats["engine_footprint_misses"],
            ])
    table = format_table(
        "Ablation: footprint partial fills (tagless, MIX5)",
        ["cache", "fill policy", "IPC", "off-pkg reads (MB)",
         "footprint misses"],
        rows,
    )
    return table, metrics


def test_ablation_footprint(benchmark, record_table):
    table, metrics = benchmark.pedantic(run_footprint_study, rounds=1,
                                        iterations=1)
    record_table("ablation_footprint", table)
    for cache_mb in (256, 512):
        full_ipc, full_rd = metrics[(cache_mb, "full-fill")]
        fp_ipc, fp_rd = metrics[(cache_mb, "footprint")]
        # The headline property: footprint fills reduce off-package
        # read traffic under pressure.
        assert fp_rd < full_rd
        # And they never cost much IPC (bounded under-fetch penalty).
        assert fp_ipc > full_ipc * 0.85
