"""Figure 11: tagless-cache replacement policy, FIFO vs LRU.

Paper: LRU outperforms FIFO "only marginally, by 1.6 % on average",
justifying the cheap FIFO header-pointer scheme.
"""

from conftest import bench_accesses, bench_harness

from repro.analysis.experiments import run_replacement_study


def run_figure11():
    # Longer traces than the other figures: replacement only matters
    # once the singleton stream has filled the cache and evictions flow.
    return run_replacement_study(accesses=bench_accesses(140_000),
                                 harness=bench_harness())


def test_fig11_replacement(benchmark, record_table):
    result = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    record_table("fig11", result.table())

    # LRU's edge is small (paper: ~1.6 %); FIFO must never be
    # catastrophically worse.
    gain = result.mean_gain_percent()
    assert -2.0 <= gain <= 10.0
