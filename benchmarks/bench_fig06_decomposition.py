"""Figure 6: latency decomposition of hit and miss paths (both designs).

The paper's Figure 6 is drawn "not to scale"; this benchmark produces it
to scale from the configured machine: each row is one path, each column
one latency component, in 3 GHz core cycles.

- (TLB hit, cache hit): SRAM-tag pays TLB + tags + in-package DRAM;
  tagless pays TLB + in-package DRAM -- the deleted tag check *is* the
  design's latency advantage.
- (TLB miss, cache miss): SRAM-tag pays walk + tags + off-package fill;
  tagless pays walk + off-package fill + the GIPT update -- the extra
  cost the design accepts on the rare path to win the common one.
"""

from conftest import bench_accesses  # noqa: F401

from repro.analysis.report import format_table
from repro.common.config import default_system


def build_decomposition():
    cfg = default_system()
    core = cfg.core
    tag = float(cfg.sram_tag.access_cycles)
    walk = float(cfg.tlb.walk_cycles)
    in_block = core.cycles_from_ns(
        cfg.in_package.row_empty_ns(64) + cfg.in_package.controller_ns
    )
    off_block = core.cycles_from_ns(
        cfg.off_package.row_empty_ns(64) + cfg.off_package.controller_ns
    )
    gipt = 2 * core.cycles_from_ns(cfg.off_package.row_hit_ns(64))

    rows = [
        ["hit/hit", "sram", 0.0, tag, in_block, 0.0, 0.0,
         tag + in_block],
        ["hit/hit", "tagless", 0.0, 0.0, in_block, 0.0, 0.0, in_block],
        ["miss/miss", "sram", walk, tag, 0.0, off_block, 0.0,
         walk + tag + off_block],
        ["miss/miss", "tagless", walk, 0.0, 0.0, off_block, gipt,
         walk + off_block + gipt],
    ]
    table = format_table(
        "Figure 6 (to scale): latency decomposition in cycles",
        ["case", "design", "page walk", "SRAM tags", "in-pkg DRAM",
         "off-pkg DRAM (critical block)", "GIPT", "total"],
        rows,
        float_format="{:.1f}",
    )
    totals = {(r[0], r[1]): r[-1] for r in rows}
    return table, totals


def test_fig06_decomposition(benchmark, record_table):
    table, totals = benchmark.pedantic(build_decomposition, rounds=1,
                                       iterations=1)
    record_table("fig06", table)
    # Figure 6a: the tagless hit path is strictly shorter.
    assert totals[("hit/hit", "tagless")] < totals[("hit/hit", "sram")]
    # Figure 6b: on the cold-miss path tagless saves the tag check but
    # pays the GIPT update; the two are the same order of magnitude.
    sram_miss = totals[("miss/miss", "sram")]
    tagless_miss = totals[("miss/miss", "tagless")]
    assert abs(tagless_miss - sram_miss) / sram_miss < 0.5
