"""Ablation: superpage handling (Sections 3.5 and 6).

The paper: superpages force coarse-grained cache usage, so the OS should
either split them into 4 KB pages (the hierarchical page table "facilitates
this breakdown") or, absent locality, declare them non-cacheable.  This
ablation maps a workload's hot region as superpages and compares the
two handler policies against the no-superpage baseline on two programs
(``sphinx3``: skewed reuse; ``libquantum``: repeated streaming).  Two
conclusions come out of it: splitting recovers the 4 KB-grain
performance essentially exactly (the split is a one-time few-dozen-cycle
cost per run), and pinning a *reused* region NC costs performance in
proportion to how much that region wanted the cache -- which is exactly
why the paper says superpages should only stay coarse "if there is
sufficient spatial and temporal locality".
"""

from conftest import bench_accesses

from repro.analysis.report import format_table
from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile

#: 2**6 = 64 pages = 256 KB superpages at simulation scale (stands in
#: for 2 MB superpages at the paper's scale).
SUPERPAGE_ORDER = 6


def superpage_regions(trace, order):
    """Cover the trace's densest pages with aligned superpage runs."""
    pages = sorted(trace.page_access_counts())
    span = 1 << order
    bases = sorted({page - page % span for page in pages})
    # Cap the mapped region so the study stays about the hot data.
    return [(base, order) for base in bases[:8]]


def run_superpage_study():
    accesses = bench_accesses(60_000)
    rows = []
    ipcs = {}
    for program in ("sphinx3", "libquantum"):
        trace = TraceGenerator(
            spec_profile(program), capacity_scale=64
        ).generate(accesses)
        bindings = [BoundTrace(0, 0, trace)]
        regions = superpage_regions(trace, SUPERPAGE_ORDER)
        baseline = Simulator(
            default_system(cache_megabytes=1024, num_cores=1,
                           capacity_scale=64)
        ).run("tagless", bindings)
        ipcs[(program, "4KB pages")] = baseline.ipc_sum
        row = [program, baseline.ipc_sum]
        for handling in ("split", "nc"):
            config = default_system(cache_megabytes=1024, num_cores=1,
                                    capacity_scale=64)
            import dataclasses

            config = dataclasses.replace(
                config,
                dram_cache=dataclasses.replace(
                    config.dram_cache, superpage_handling=handling
                ),
            )
            result = Simulator(config).run(
                "tagless", bindings, superpages={0: regions},
            )
            ipcs[(program, handling)] = result.ipc_sum
            row.append(result.ipc_sum)
        rows.append(row)
    table = format_table(
        f"Ablation: superpage handling (order-{SUPERPAGE_ORDER} runs over "
        "the hot region, tagless)",
        ["program", "4KB pages", "superpages: split", "superpages: nc"],
        rows,
    )
    return table, ipcs


def test_ablation_superpages(benchmark, record_table):
    table, ipcs = benchmark.pedantic(run_superpage_study, rounds=1,
                                     iterations=1)
    record_table("ablation_superpages", table)
    for program in ("sphinx3", "libquantum"):
        base = ipcs[(program, "4KB pages")]
        split = ipcs[(program, "split")]
        nc = ipcs[(program, "nc")]
        # Splitting recovers (almost) the 4 KB-grain performance.
        assert split > base * 0.97
        # Pinning the hot region NC costs performance.
        assert nc <= split
    # The penalty of NC is largest where reuse is highest.
    sphinx_gap = (ipcs[("sphinx3", "split")]
                  - ipcs[("sphinx3", "nc")]) / ipcs[("sphinx3", "split")]
    assert sphinx_gap > 0.01
