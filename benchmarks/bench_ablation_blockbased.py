"""Ablation: the block-based design class (Table 2's third column).

Runs the Alloy-style direct-mapped block cache alongside the paper's
page-based designs on two contrasting workloads:

- ``libquantum`` (pure streaming, strong spatial locality): page-based
  caching shines -- one 4 KB fill serves 64 future blocks -- while the
  block cache re-misses line after line;
- ``omnetpp`` (pointer chasing, weak spatial locality): block caching's
  minimal over-fetch closes much of the gap.

This quantifies the "high DRAM row buffer locality / minimal
over-fetching" rows of Table 2.
"""

from conftest import bench_accesses

from repro.analysis.report import format_table
from repro.common.config import default_system
from repro.cpu.multicore import BoundTrace
from repro.cpu.simulator import Simulator
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import spec_profile


def run_block_study():
    accesses = bench_accesses(80_000)
    config = default_system(cache_megabytes=1024, num_cores=1,
                            capacity_scale=64)
    sim = Simulator(config)
    rows = []
    norm = {}
    for program in ("libquantum", "omnetpp"):
        trace = TraceGenerator(
            spec_profile(program), capacity_scale=64
        ).generate(accesses)
        bindings = [BoundTrace(0, 0, trace)]
        base = sim.run("no-l3", bindings).ipc_sum
        row = [program]
        for design in ("alloy", "sram", "tagless"):
            result = sim.run(design, bindings)
            norm[(program, design)] = result.ipc_sum / base
            row.append(result.ipc_sum / base)
        rows.append(row)
    table = format_table(
        "Ablation: block-based vs page-based vs tagless "
        "(IPC normalised to No-L3)",
        ["program", "alloy (block)", "sram (page)", "tagless"],
        rows,
    )
    return table, norm


def test_ablation_blockbased(benchmark, record_table):
    table, norm = benchmark.pedantic(run_block_study, rounds=1,
                                     iterations=1)
    record_table("ablation_blockbased", table)
    # Streaming: page-granularity wins big over block-granularity.
    assert norm[("libquantum", "tagless")] > norm[("libquantum", "alloy")]
    # Tagless never loses to the block cache on these workloads.
    for program in ("libquantum", "omnetpp"):
        assert norm[(program, "tagless")] >= norm[(program, "alloy")] * 0.98
