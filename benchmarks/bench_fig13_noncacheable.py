"""Figure 13 / Section 5.4: non-cacheable pages on 459.GemsFDTD.

Pages with fewer than 32 accesses (fewer than half their 64 blocks
touched) are flagged NC so they bypass the DRAM cache.  Paper: +7.1 %
IPC over tagless without NC, from reduced bandwidth pollution and a
higher hit ratio for the pages that remain.
"""

from conftest import bench_accesses, bench_harness

from repro.analysis.experiments import run_noncacheable_study


def run_figure13():
    return run_noncacheable_study(accesses=bench_accesses(150_000),
                                  harness=bench_harness())


def test_fig13_noncacheable(benchmark, record_table):
    result = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    record_table("fig13", result.table())

    assert result.nc_pages > 0, "GemsFDTD must have low-reuse pages"
    # NC classification helps (paper: +7.1 %); any clear positive gain
    # reproduces the conclusion.
    assert result.gain_percent() > 0.5
