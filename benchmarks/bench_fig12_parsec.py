"""Figure 12: multi-threaded PARSEC (4 threads, shared address space).

Paper: streamcluster and facesim (high page reuse, high MPKI) gain --
streamcluster the most; swaptions and fluidanimate (singleton-heavy,
low MPKI) see little to no improvement.
"""

from conftest import bench_accesses, bench_harness

from repro.analysis.experiments import run_parsec


def run_figure12():
    return run_parsec(accesses=bench_accesses(60_000),
                      harness=bench_harness())


def test_fig12_parsec(benchmark, record_table):
    result = benchmark.pedantic(run_figure12, rounds=1, iterations=1)
    record_table("fig12", result.ipc_table(), result.edp_table())

    ipc = {p: result.normalized_ipc(p) for p in result.programs}
    # streamcluster is the biggest winner of the four.
    gains = {p: ipc[p]["tagless"] for p in result.programs}
    assert max(gains, key=gains.get) == "streamcluster"
    # swaptions barely moves (low MPKI -> memory system irrelevant).
    assert gains["swaptions"] < 1.10
    # The reuse-heavy programs gain substantially and tagless beats the
    # SRAM-tag baseline on them (paper: +0.6 % for streamcluster, EDP
    # win for facesim).
    for program in ("streamcluster", "facesim"):
        assert gains[program] > 1.10
        assert ipc[program]["tagless"] >= ipc[program]["sram"] * 0.99
        edp = result.normalized_edp(program)
        assert edp["tagless"] < edp["sram"]
