"""Simulation-engine throughput benchmark (accesses per second).

Unlike the figure benchmarks, this one measures the *simulator*, not the
simulated machine: how many memory references per wall-clock second the
per-access engine sustains for each design.  Its numbers form the perf
trajectory future PRs are judged against -- a hot-path regression shows
up here before it shows up as slow figure runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_throughput.py --json

The full run replays ``--accesses`` references (default 200k) of one
SPEC workload through every selected design and reports the best of
``--repeat`` timings (best-of is the standard way to suppress scheduler
noise in throughput numbers).  ``--smoke`` shrinks the trace to a few
thousand accesses so CI can prove the entry point works without paying
for a real measurement.  The text table is archived to
``benchmarks/results/throughput.txt`` like the figure tables, and
``--json`` additionally writes the machine-readable records (per-design
acc/s, best-of-N, engine mode) to
``benchmarks/results/BENCH_throughput.json`` so perf trajectories can be
diffed across PRs without parsing tables.

``--engine batched`` times the fused kernels of :mod:`repro.cpu.batched`
instead of the per-access loop; the engines are bit-identical, so the
IPC column is a correctness canary across modes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.config import default_system  # noqa: E402
from repro.cpu.batched import ENGINE_MODES  # noqa: E402
from repro.cpu.multicore import BoundTrace  # noqa: E402
from repro.cpu.simulator import Simulator  # noqa: E402
from repro.designs.registry import ALL_DESIGN_NAMES  # noqa: E402
from repro.workloads.generator import TraceGenerator  # noqa: E402
from repro.workloads.spec import spec_profile  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SMOKE_ACCESSES = 4000


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--designs", nargs="+", default=list(ALL_DESIGN_NAMES),
                        choices=ALL_DESIGN_NAMES, metavar="DESIGN",
                        help="designs to time (default: all registered)")
    parser.add_argument("--workload", default="mcf",
                        help="SPEC program driving the engine (default mcf)")
    parser.add_argument("--accesses", type=int, default=200_000,
                        help="trace length per timing (default 200k)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timings per design; best is reported")
    parser.add_argument("--cache-mb", type=int, default=1024)
    parser.add_argument("--scale", type=int, default=64)
    parser.add_argument("--smoke", action="store_true",
                        help=f"tiny trace ({SMOKE_ACCESSES} accesses, one "
                             "repeat): exercises the entry point, does not "
                             "measure")
    parser.add_argument("--engine", choices=ENGINE_MODES, default="scalar",
                        help="execution engine to time (default scalar; "
                             "batched runs the fused kernels)")
    parser.add_argument("--json", action="store_true",
                        help="emit results as JSON on stdout and archive "
                             "them to benchmarks/results/"
                             "BENCH_throughput.json")
    parser.add_argument("--no-archive", action="store_true",
                        help="do not write benchmarks/results/ artifacts")
    return parser.parse_args(argv)


def time_design(design_name: str, simulator: Simulator, bindings,
                repeat: int, engine: str = "scalar") -> dict:
    """Best-of-``repeat`` wall time for one design; returns a record."""
    total_accesses = sum(len(b.trace) for b in bindings)
    best = float("inf")
    ipc = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = simulator.run(design_name, bindings, engine=engine)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        ipc = result.ipc_sum
    return {
        "design": design_name,
        "engine": engine,
        "accesses": total_accesses,
        "seconds": best,
        # A zero-length run finishes in ~0s and serves 0 accesses; its
        # rate is reported as 0 rather than nan/inf.
        "accesses_per_second": (total_accesses / best) if best > 0 else 0.0,
        "ipc": ipc,
    }


def run(args: argparse.Namespace) -> list:
    accesses = SMOKE_ACCESSES if args.smoke else args.accesses
    repeat = 1 if args.smoke else args.repeat
    generator = TraceGenerator(spec_profile(args.workload),
                               capacity_scale=args.scale)
    trace = generator.generate(accesses)
    config = default_system(cache_megabytes=args.cache_mb, num_cores=1,
                            capacity_scale=args.scale)
    simulator = Simulator(config)
    bindings = [BoundTrace(0, 0, trace)]
    records = []
    for design in args.designs:
        record = time_design(design, simulator, bindings, repeat,
                             engine=args.engine)
        record["workload"] = args.workload
        records.append(record)
        print(f"  {design:8s} {record['accesses_per_second']:12,.0f} acc/s "
              f"({record['seconds'] * 1e3:8.1f} ms)", file=sys.stderr)
    return records


def table(records: list, args: argparse.Namespace) -> str:
    lines = [
        "Simulation-engine throughput "
        f"(workload {args.workload}, {records[0]['accesses']} accesses, "
        f"engine {args.engine}, best of {1 if args.smoke else args.repeat})",
        f"{'design':10s} {'accesses/s':>14s} {'ms/run':>10s}",
    ]
    for record in records:
        lines.append(
            f"{record['design']:10s} "
            f"{record['accesses_per_second']:14,.0f} "
            f"{record['seconds'] * 1e3:10.1f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    args = parse_args(argv)
    records = run(args)
    text = table(records, args)
    if args.json:
        print(json.dumps(records, indent=2))
    else:
        print(text)
    if not args.no_archive and not args.smoke:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, "throughput.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"archived to {path}", file=sys.stderr)
        if args.json:
            payload = {
                "benchmark": "throughput",
                "workload": args.workload,
                "accesses": records[0]["accesses"] if records else 0,
                "repeat": args.repeat,
                "engine": args.engine,
                "records": records,
            }
            json_path = os.path.join(RESULTS_DIR, "BENCH_throughput.json")
            with open(json_path, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"archived to {json_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
