"""Perf-trajectory ledger: throughput history with a regression gate.

One ``bench_throughput --json`` run is a point measurement; the
*trajectory* of those measurements across commits is what tells you a
PR quietly cost 20% of engine throughput.  This tool maintains that
trajectory in the repo root as ``BENCH_throughput.json`` -- a small
append-only JSON ledger, reviewable in diffs like any other file --
and gates on it.

Usage::

    # Measure, then append the run to the ledger:
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --engine batched --json > /tmp/bench.json
    python benchmarks/bench_history.py append --input /tmp/bench.json

    # Gate: fail when the newest entry regresses vs the trailing median
    python benchmarks/bench_history.py check --tolerance 0.3

    # Inspect the trajectory
    python benchmarks/bench_history.py show

``append`` accepts either the raw record list ``bench_throughput
--json`` prints on stdout or the archived payload dict it writes to
``benchmarks/results/BENCH_throughput.json``; entries are stamped with
wall-clock time and (when available) the git commit.  ``check``
compares each design's accesses-per-second in the newest entry against
the median of up to ``--window`` earlier entries for the same
(design, engine, workload) series and fails when the newest value
falls below ``median * (1 - tolerance)``.  Until a series has
``--min-history`` earlier points the gate reports "seeding" and
passes: medians over one or two CI runners are noise, not a baseline.

The default tolerance is deliberately loose (30%): shared CI runners
jitter by tens of percent, and the gate exists to catch structural
regressions (an accidental O(n^2), a hot-path allocation), not 5%
scheduler luck.  Local trend-watching can tighten it.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_HISTORY = os.path.join(REPO_ROOT, "BENCH_throughput.json")

HISTORY_SCHEMA = "repro-bench-history/v1"


# ----------------------------------------------------------------------
# Ledger I/O
# ----------------------------------------------------------------------
def load_history(path: str) -> dict:
    """Load the ledger; a missing file is an empty trajectory."""
    if not os.path.exists(path):
        return {"schema": HISTORY_SCHEMA, "benchmark": "throughput",
                "entries": []}
    with open(path) as handle:
        history = json.load(handle)
    if not isinstance(history, dict) or "entries" not in history:
        raise SystemExit(f"bench_history: {path} is not a history ledger "
                         "(expected an object with an 'entries' list)")
    return history


def save_history(history: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def normalize_payload(payload) -> dict:
    """Accept raw ``--json`` stdout (a record list) or the archived
    payload dict, and return the payload-dict shape."""
    if isinstance(payload, list):
        records = payload
        if not records:
            raise SystemExit("bench_history: input holds no records")
        return {
            "benchmark": "throughput",
            "workload": records[0].get("workload", "unknown"),
            "accesses": records[0].get("accesses", 0),
            "engine": records[0].get("engine", "scalar"),
            "records": records,
        }
    if isinstance(payload, dict) and isinstance(payload.get("records"), list):
        return payload
    raise SystemExit("bench_history: input is neither a record list nor a "
                     "bench_throughput payload")


def make_entry(payload: dict, now: Optional[float] = None,
               commit: Optional[str] = None) -> dict:
    records = [
        {
            "design": r["design"],
            "engine": r.get("engine", payload.get("engine", "scalar")),
            "accesses": r.get("accesses", 0),
            "seconds": r.get("seconds", 0.0),
            "accesses_per_second": r["accesses_per_second"],
        }
        for r in payload["records"]
    ]
    now = time.time() if now is None else now
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "commit": commit if commit is not None else _git_commit(),
        "workload": payload.get("workload", "unknown"),
        "accesses": payload.get("accesses", 0),
        "engine": payload.get("engine", "scalar"),
        "records": records,
    }


# ----------------------------------------------------------------------
# Regression check
# ----------------------------------------------------------------------
def _series_key(entry: dict, record: dict) -> Tuple[str, str, str]:
    return (record["design"], record.get("engine", entry.get("engine", "?")),
            entry.get("workload", "?"))


def check_trajectory(history: dict, tolerance: float, window: int,
                     min_history: int) -> Tuple[List[dict], List[str]]:
    """Judge the newest entry against each series' trailing median.

    Returns ``(verdicts, regressions)``: one verdict row per record of
    the newest entry, and the subset of human-readable regression
    messages (empty means the gate passes).
    """
    entries = history.get("entries", [])
    if not entries:
        raise SystemExit("bench_history: ledger has no entries; run "
                         "'append' first")
    newest = entries[-1]
    trailing: Dict[Tuple[str, str, str], List[float]] = {}
    for entry in entries[:-1]:
        for record in entry.get("records", []):
            trailing.setdefault(_series_key(entry, record), []).append(
                record["accesses_per_second"])

    verdicts: List[dict] = []
    regressions: List[str] = []
    for record in newest.get("records", []):
        key = _series_key(newest, record)
        rate = record["accesses_per_second"]
        prior = trailing.get(key, [])[-window:]
        verdict = {
            "design": key[0], "engine": key[1], "workload": key[2],
            "accesses_per_second": rate, "prior_points": len(prior),
        }
        if len(prior) < min_history:
            verdict["status"] = "seeding"
        else:
            median = statistics.median(prior)
            floor = median * (1.0 - tolerance)
            verdict["trailing_median"] = median
            verdict["floor"] = floor
            if rate < floor:
                verdict["status"] = "regression"
                regressions.append(
                    f"{key[0]}/{key[1]}/{key[2]}: {rate:,.0f} acc/s is "
                    f"below {floor:,.0f} (median {median:,.0f} over "
                    f"{len(prior)} runs, tolerance {tolerance:.0%})")
            else:
                verdict["status"] = "ok"
        verdicts.append(verdict)
    return verdicts, regressions


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_append(args: argparse.Namespace) -> int:
    if args.input == "-":
        payload = normalize_payload(json.load(sys.stdin))
    else:
        with open(args.input) as handle:
            payload = normalize_payload(json.load(handle))
    history = load_history(args.history)
    entry = make_entry(payload, commit=args.commit)
    history["entries"].append(entry)
    if args.max_entries and len(history["entries"]) > args.max_entries:
        history["entries"] = history["entries"][-args.max_entries:]
    save_history(history, args.history)
    rates = ", ".join(f"{r['design']} {r['accesses_per_second']:,.0f}"
                      for r in entry["records"])
    print(f"bench_history: appended entry #{len(history['entries'])} "
          f"({entry['engine']}/{entry['workload']}: {rates} acc/s) "
          f"-> {args.history}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    history = load_history(args.history)
    verdicts, regressions = check_trajectory(
        history, args.tolerance, args.window, args.min_history)
    for verdict in verdicts:
        line = (f"  {verdict['design']:10s} {verdict['engine']:8s} "
                f"{verdict['accesses_per_second']:14,.0f} acc/s  "
                f"[{verdict['status']}]")
        if "trailing_median" in verdict:
            line += (f"  median {verdict['trailing_median']:,.0f} over "
                     f"{verdict['prior_points']} runs")
        print(line)
    if regressions:
        for message in regressions:
            print(f"bench_history: REGRESSION {message}", file=sys.stderr)
        if args.warn_only:
            print("bench_history: --warn-only set; not failing",
                  file=sys.stderr)
            return 0
        return 1
    seeding = sum(1 for v in verdicts if v["status"] == "seeding")
    if seeding:
        print(f"bench_history: PASS ({seeding}/{len(verdicts)} series still "
              f"seeding; gate active after {args.min_history} runs)")
    else:
        print(f"bench_history: PASS ({len(verdicts)} series within "
              f"{args.tolerance:.0%} of trailing median)")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    history = load_history(args.history)
    entries = history.get("entries", [])
    if not entries:
        print("bench_history: empty ledger")
        return 0
    for i, entry in enumerate(entries):
        commit = entry.get("commit") or "-"
        print(f"#{i + 1}  {entry.get('timestamp', '?')}  {commit:>9s}  "
              f"{entry.get('engine', '?')}/{entry.get('workload', '?')} "
              f"({entry.get('accesses', 0)} accesses)")
        for record in entry.get("records", []):
            print(f"      {record['design']:10s} "
                  f"{record['accesses_per_second']:14,.0f} acc/s")
    return 0


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="ledger path (default: repo-root "
                             "BENCH_throughput.json)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append",
                              help="append a bench_throughput --json run")
    p_append.add_argument("--input", default="-",
                          help="JSON file from bench_throughput --json "
                               "('-' reads stdin)")
    p_append.add_argument("--commit", default=None,
                          help="commit id to stamp (default: git HEAD)")
    p_append.add_argument("--max-entries", type=int, default=200,
                          help="cap ledger length, oldest dropped "
                               "(default 200; 0 keeps all)")
    p_append.set_defaults(func=cmd_append)

    p_check = sub.add_parser("check",
                             help="gate newest entry vs trailing median")
    p_check.add_argument("--tolerance", type=float, default=0.3,
                         help="allowed drop below trailing median "
                              "(default 0.3)")
    p_check.add_argument("--window", type=int, default=10,
                         help="trailing entries per series feeding the "
                              "median (default 10)")
    p_check.add_argument("--min-history", type=int, default=3,
                         help="prior points required before the gate "
                              "arms (default 3)")
    p_check.add_argument("--warn-only", action="store_true",
                         help="report regressions without failing")
    p_check.set_defaults(func=cmd_check)

    p_show = sub.add_parser("show", help="print the trajectory")
    p_show.set_defaults(func=cmd_show)

    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
