"""Shared plumbing for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper, prints the
paper-style text table, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can be refreshed by diffing that directory.

Scale knobs: the environment variable ``REPRO_BENCH_ACCESSES`` overrides
the per-core trace length (default 100k single-programmed / 70k per core
multi-programmed), trading fidelity for runtime.

Execution knobs: ``REPRO_BENCH_JOBS`` fans each figure sweep out to that
many worker processes through :mod:`repro.harness`, and
``REPRO_BENCH_CACHE`` (a directory path, or ``1`` for the default
``~/.cache/repro``) replays unchanged points from the on-disk result
cache -- so re-running the benchmark suite after a change only
recomputes what the change invalidated.  Unset, benchmarks run the
serial, uncached reference path exactly as before.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_accesses(default: int) -> int:
    """Per-core trace length for a benchmark, env-overridable."""
    override = os.environ.get("REPRO_BENCH_ACCESSES")
    if override:
        return int(override)
    return default


def bench_harness():
    """Build the harness the figure benchmarks dispatch through.

    Returns ``None`` (the serial, uncached reference path) unless
    ``REPRO_BENCH_JOBS`` or ``REPRO_BENCH_CACHE`` asks for more.
    """
    from repro.harness import Harness, ResultCache

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_env = os.environ.get("REPRO_BENCH_CACHE")
    if jobs <= 1 and not cache_env:
        return None
    cache = None
    if cache_env:
        cache = ResultCache(None if cache_env == "1" else cache_env)
    return Harness(jobs=max(1, jobs), cache=cache)


@pytest.fixture
def record_table(request):
    """Returns a function that prints a table and archives it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _record(name: str, *tables: str) -> None:
        text = "\n\n".join(tables) + "\n"
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text)
        print()
        print(text)

    return _record
