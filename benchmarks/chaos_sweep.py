"""CI chaos gate: a sweep under injected faults must degrade gracefully.

Runs a small ``repro sweep`` with a hang, a worker SIGKILL and a flaky
job injected via ``REPRO_FAULT_INJECT``, then asserts the acceptance
contract of the fault-tolerance layer:

1. the sweep completes (no stall, no ``BrokenProcessPool`` abort) with
   exactly the expected per-job statuses -- ``timeout`` for the hung
   point, ``worker-crashed`` for the killed one, ``ok`` (after one
   retry) for the flaky one, plain ``ok`` for the rest;
2. re-running with ``--resume`` on the produced artifact, faults
   disabled, recomputes *only* the failed points -- every previously
   good point is seeded from the artifact, and the whole sweep ends
   green.

Exit code 0 on success, 1 with a report of every violated expectation.

Usage::

    PYTHONPATH=src python benchmarks/chaos_sweep.py [--timeout 3.0]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.cli.main import main as cli_main

#: The swept grid: 2 designs x 2 workloads (single-core SPEC points).
DESIGNS = ("no-l3", "tagless")
WORKLOADS = ("sphinx3", "libquantum")

#: Injected faults, keyed by spec-label substrings.
FAULTS = ("hang:tagless/sphinx3,"
          "crash:no-l3/sphinx3,"
          "flaky:tagless/libquantum:1")

#: label fragment -> expected terminal status under faults.
EXPECTED = {
    "no-l3/sphinx3": "worker-crashed",
    "tagless/sphinx3": "timeout",
    "tagless/libquantum": "ok",
    "no-l3/libquantum": "ok",
}


def _job_rows(path):
    with open(path) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    rows = {}
    for record in records:
        if record.get("record") == "job":
            spec = record["spec"]
            rows[f"{spec['design']}/{spec['workload']}"] = record
    summary = records[-1] if records else {}
    return rows, summary


def run(timeout_s: float) -> int:
    problems = []

    def expect(condition: bool, message: str) -> None:
        if condition:
            print(f"  [ok]   {message}")
        else:
            problems.append(message)
            print(f"  [FAIL] {message}")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        first = os.path.join(tmp, "chaos.jsonl")
        argv = ["sweep", "--designs", *DESIGNS, "--workloads", *WORKLOADS,
                "--accesses", "2000", "--jobs", "2", "--no-cache",
                "--timeout", str(timeout_s), "--retries", "1",
                "--retry-backoff", "0"]

        print(f"chaos sweep: {FAULTS}")
        os.environ["REPRO_FAULT_INJECT"] = FAULTS
        try:
            code = cli_main(argv + ["--out", first])
        finally:
            del os.environ["REPRO_FAULT_INJECT"]
        rows, summary = _job_rows(first)
        expect(code == 1, f"faulted sweep exits 1 (got {code})")
        expect(len(rows) == len(EXPECTED),
               f"all {len(EXPECTED)} points recorded (got {len(rows)})")
        for label, status in EXPECTED.items():
            got = rows.get(label, {}).get("status")
            expect(got == status, f"{label}: status {status} (got {got})")
        retried = rows.get("tagless/libquantum", {}).get("retries")
        expect(retried == 1,
               f"flaky point succeeded on retry 1 (got {retried})")
        expect(summary.get("timeouts") == 1,
               f"summary counts 1 timed-out point "
               f"(got {summary.get('timeouts')})")
        expect(summary.get("worker_crashes") == 1,
               f"summary counts 1 crashed point "
               f"(got {summary.get('worker_crashes')})")
        expect(summary.get("retries") == 3,
               f"summary counts 3 consumed retries "
               f"(got {summary.get('retries')})")

        print("resume sweep: faults cleared, seeding from artifact")
        second = os.path.join(tmp, "resumed.jsonl")
        code = cli_main(argv + ["--out", second, "--resume", first])
        rows, summary = _job_rows(second)
        expect(code == 0, f"resumed sweep exits 0 (got {code})")
        for label in EXPECTED:
            got = rows.get(label, {}).get("status")
            expect(got == "ok", f"{label}: recovered to ok (got {got})")
        resumed = [label for label, row in rows.items()
                   if row.get("cache") == "resume"]
        expect(sorted(resumed) == ["no-l3/libquantum", "tagless/libquantum"],
               f"exactly the 2 good points were seeded, the 2 failed "
               f"ones recomputed (seeded: {sorted(resumed)})")
        expect(summary.get("resumed") == 2,
               f"summary counts 2 resumed points "
               f"(got {summary.get('resumed')})")

    verdict = "PASS" if not problems else f"FAIL ({len(problems)})"
    print(f"chaos gate: {verdict}")
    return 0 if not problems else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=3.0,
                        help="per-job budget the hung point must hit "
                             "(default 3.0s; the hang costs 2x this "
                             "because the timed-out point is retried)")
    args = parser.parse_args()
    return run(args.timeout)


if __name__ == "__main__":
    sys.exit(main())
