"""Observability overhead guard: the disabled path must stay fast.

PR 4's telemetry is designed to be zero-cost when off -- the only
residue on the hot path is a prebound no-op ``trace_event`` attribute
touched on *rare* events (TLB refills, fills, evictions).  This guard
proves it: for each design it re-measures plain-run throughput
(best-of-``--repeat``, same methodology as ``bench_throughput.py``) and
fails if any design falls more than ``--tolerance`` below a baseline
recorded *before or without* the instrumentation::

    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke --json \
        > baseline.json
    PYTHONPATH=src python benchmarks/bench_obs_guard.py --smoke \
        --baseline baseline.json

Without ``--baseline`` the guard times each design twice in-process --
once plain, once with a full telemetry bundle attached -- and asserts
the *enabled* overhead stays within ``--enabled-tolerance``; this keeps
the guard meaningful even where no baseline file is available.  Both
comparisons use best-of-N timings, the standard suppressor of scheduler
noise, and the tolerances are deliberately loose (5% / 150%): this is a
tripwire for "someone put work on the disabled path", not a profiler.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.config import default_system  # noqa: E402
from repro.cpu.multicore import BoundTrace  # noqa: E402
from repro.cpu.simulator import Simulator  # noqa: E402
from repro.designs.registry import ALL_DESIGN_NAMES  # noqa: E402
from repro.obs import make_telemetry, set_registry  # noqa: E402
from repro.obs.metrics import (  # noqa: E402
    NULL_INSTRUMENT,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
)
from repro.workloads.generator import TraceGenerator  # noqa: E402
from repro.workloads.spec import spec_profile  # noqa: E402

SMOKE_ACCESSES = 4000


def metrics_null_check() -> None:
    """Structural proof the metrics-off path is the shared no-op.

    A disabled :class:`MetricsRegistry` must hand every caller the one
    ``NULL_INSTRUMENT`` singleton -- that is what makes instrumented
    call sites (pool, cache, shm, campaign) cost exactly one no-op
    method call when ``REPRO_METRICS`` is unset.  Raises SystemExit on
    violation so the guard fails loudly, not with a timing wobble.
    """
    if metrics_enabled():
        raise SystemExit("obs guard: REPRO_METRICS is set; the disabled-"
                         "path guard must run with metrics off")
    disabled = MetricsRegistry(enabled=False)
    instruments = (
        disabled.counter("guard_c", "x"),
        disabled.gauge("guard_g", "x"),
        disabled.histogram("guard_h", "x"),
    )
    for instrument in instruments:
        if instrument is not NULL_INSTRUMENT:
            raise SystemExit("obs guard: disabled registry leaked a live "
                             f"instrument: {instrument!r}")
    if get_registry().enabled:
        raise SystemExit("obs guard: default registry is enabled without "
                         "REPRO_METRICS")
    enabled = MetricsRegistry(enabled=True)
    if enabled.counter("guard_c", "x") is NULL_INSTRUMENT:
        raise SystemExit("obs guard: enabled registry returned the null "
                         "instrument")
    print("  [ok  ] metrics registry: disabled path shares "
          "NULL_INSTRUMENT; default registry off", file=sys.stderr)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--designs", nargs="+", default=list(ALL_DESIGN_NAMES),
                        choices=ALL_DESIGN_NAMES, metavar="DESIGN")
    parser.add_argument("--workload", default="mcf",
                        help="SPEC program driving the engine (default mcf)")
    parser.add_argument("--accesses", type=int, default=100_000,
                        help="trace length per timing (default 100k)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timings per design; best is compared")
    parser.add_argument("--cache-mb", type=int, default=1024)
    parser.add_argument("--scale", type=int, default=64)
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="bench_throughput --json records to compare "
                             "the disabled path against")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed fractional slowdown vs the baseline "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--enabled-tolerance", type=float, default=1.5,
                        help="allowed fractional slowdown with telemetry "
                             "attached (default 1.5 = 150%%)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI size: {SMOKE_ACCESSES} accesses, "
                             "repeat bumped to 5 to tame timing noise")
    parser.add_argument("--json", action="store_true",
                        help="emit the comparison as JSON on stdout")
    return parser.parse_args(argv)


def _best_of(simulator: Simulator, design: str, bindings, repeat: int,
             telemetry_factory=None) -> float:
    """Best wall time over ``repeat`` runs (optionally instrumented)."""
    best = float("inf")
    for _ in range(repeat):
        telemetry = telemetry_factory() if telemetry_factory else None
        start = time.perf_counter()
        simulator.run(design, bindings, telemetry=telemetry)
        best = min(best, time.perf_counter() - start)
    return best


def load_baseline(path: str) -> dict:
    """``design -> accesses_per_second`` from bench_throughput records."""
    with open(path) as handle:
        records = json.load(handle)
    return {r["design"]: r["accesses_per_second"] for r in records}


def run_guard(args: argparse.Namespace) -> list:
    accesses = SMOKE_ACCESSES if args.smoke else args.accesses
    repeat = max(args.repeat, 5) if args.smoke else args.repeat
    baseline = load_baseline(args.baseline) if args.baseline else None
    generator = TraceGenerator(spec_profile(args.workload),
                               capacity_scale=args.scale)
    trace = generator.generate(accesses)
    config = default_system(cache_megabytes=args.cache_mb, num_cores=1,
                            capacity_scale=args.scale)
    simulator = Simulator(config)
    bindings = [BoundTrace(0, 0, trace)]

    rows = []
    for design in args.designs:
        plain_s = _best_of(simulator, design, bindings, repeat)
        plain_rate = accesses / plain_s if plain_s > 0 else 0.0
        row = {
            "design": design,
            "accesses": accesses,
            "plain_accesses_per_second": plain_rate,
        }
        if baseline is not None:
            reference = baseline.get(design)
            if reference is None:
                row["status"] = "skip"
                row["reason"] = "design missing from baseline"
            else:
                # rate >= reference * (1 - tolerance) passes.
                floor = reference * (1.0 - args.tolerance)
                row["baseline_accesses_per_second"] = reference
                row["ratio"] = plain_rate / reference if reference else 0.0
                row["status"] = "ok" if plain_rate >= floor else "FAIL"
        else:
            enabled_s = _best_of(
                simulator, design, bindings, repeat,
                telemetry_factory=lambda: make_telemetry(
                    interval=max(1, accesses // 16)
                ),
            )
            enabled_rate = accesses / enabled_s if enabled_s > 0 else 0.0
            ceiling = plain_s * (1.0 + args.enabled_tolerance)
            row["enabled_accesses_per_second"] = enabled_rate
            row["overhead"] = (enabled_s / plain_s - 1.0) if plain_s else 0.0
            row["status"] = "ok" if enabled_s <= ceiling else "FAIL"
        rows.append(row)
        note = ""
        if "ratio" in row:
            note = f" ({100.0 * row['ratio']:.0f}% of baseline)"
        elif "overhead" in row:
            note = f" (+{100.0 * row['overhead']:.0f}% enabled)"
        print(f"  [{row['status']:4s}] {design:8s} "
              f"{plain_rate:12,.0f} acc/s{note}", file=sys.stderr)
    return rows


def main(argv=None) -> int:
    args = parse_args(argv)
    if not (0.0 <= args.tolerance < 1.0):
        raise SystemExit("--tolerance must be in [0, 1)")
    mode = "baseline" if args.baseline else "self-relative"
    print(f"obs guard ({mode}, tolerance "
          f"{args.tolerance if args.baseline else args.enabled_tolerance})",
          file=sys.stderr)
    metrics_null_check()
    # Time the disabled path with a disabled registry explicitly
    # installed: what the 5% baseline comparison certifies is the whole
    # metrics-off stack, not a build that dodged the metrics layer.
    set_registry(MetricsRegistry(enabled=False))
    rows = run_guard(args)
    failures = [r for r in rows if r["status"] == "FAIL"]
    if args.json:
        print(json.dumps(rows, indent=2))
    verdict = "PASS" if not failures else f"FAIL ({len(failures)} designs)"
    print(f"obs guard: {verdict}")
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
