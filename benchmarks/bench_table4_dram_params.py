"""Table 4: DRAM timing/energy parameters -- and their derived menu.

Prints the raw Table 4 constants plus the latencies and energies the
simulator derives from them (block access, page fill, transfer times),
so every number entering the evaluation is inspectable in one place.
"""

from conftest import bench_accesses  # noqa: F401

from repro.analysis.report import format_table
from repro.common.addressing import CACHE_LINE_BYTES, PAGE_BYTES
from repro.common.config import default_system
from repro.dram.device import DRAMDevice


def build_table4():
    cfg = default_system()
    rows = []
    devices = {}
    for label, timing, energy in (
        ("in-package", cfg.in_package, cfg.in_package_energy),
        ("off-package", cfg.off_package, cfg.off_package_energy),
    ):
        device = DRAMDevice(timing, energy)
        devices[label] = device
        block_ns = timing.row_empty_ns(CACHE_LINE_BYTES) + timing.controller_ns
        rows.append([
            label,
            f"{timing.trcd_ns:.0f}/{timing.taa_ns:.0f}/"
            f"{timing.tras_ns:.0f}/{timing.trp_ns:.0f}",
            f"{timing.bytes_per_ns:.1f}GB/s",
            f"{block_ns:.1f}ns",
            f"{timing.transfer_ns(PAGE_BYTES):.0f}ns",
            f"{energy.access_nj(CACHE_LINE_BYTES, 1):.1f}nJ",
            f"{energy.access_nj(PAGE_BYTES, 1):.0f}nJ",
        ])
    table = format_table(
        "Table 4: DRAM device parameters and derived access costs",
        ["device", "tRCD/tAA/tRAS/tRP", "bandwidth", "64B access",
         "4KB stream", "64B energy", "4KB energy"],
        rows,
    )
    return table, devices


def test_table4_dram_params(benchmark, record_table):
    table, devices = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    record_table("table4", table)
    in_pkg, off_pkg = devices["in-package"], devices["off-package"]
    # In-package: 4x bandwidth, lower latency, cheaper energy (Table 4).
    assert in_pkg.timing.bytes_per_ns == 4 * off_pkg.timing.bytes_per_ns
    assert (in_pkg.timing.row_empty_ns(64)
            < off_pkg.timing.row_empty_ns(64))
    assert (in_pkg.energy.config.access_nj(64)
            < off_pkg.energy.config.access_nj(64))
