"""Batched-engine speedup guard: the fused kernels must stay fast.

The batched engine exists to be faster than the scalar loop while
staying bit-identical to it (the golden oracle locks identity; this
guard locks *speed*).  For each design it measures best-of-``--repeat``
throughput under both engines on one workload and fails if the batched
/ scalar ratio falls below ``--min-ratio``::

    PYTHONPATH=src python benchmarks/bench_engine_guard.py --smoke
    PYTHONPATH=src python benchmarks/bench_engine_guard.py \
        --designs tagless --accesses 100000 --min-ratio 2.0

The default floor (1.5x on the smoke workload) is deliberately well
below the measured speedup: this is a tripwire for "someone put
per-access work back on the batched path" (or silently routed batched
runs through the scalar fallback), not a performance contract for a
particular machine.  IPC is compared exactly across engines as a free
correctness canary -- a guard run that got faster by diverging is a
failure, not a win.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.config import default_system  # noqa: E402
from repro.cpu.multicore import BoundTrace  # noqa: E402
from repro.cpu.simulator import Simulator  # noqa: E402
from repro.designs.registry import ALL_DESIGN_NAMES  # noqa: E402
from repro.workloads.generator import TraceGenerator  # noqa: E402
from repro.workloads.spec import spec_profile  # noqa: E402

SMOKE_ACCESSES = 20_000


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--designs", nargs="+", default=["tagless"],
                        choices=ALL_DESIGN_NAMES, metavar="DESIGN",
                        help="designs to compare (default: tagless, the "
                             "hot path the batched kernels specialise)")
    parser.add_argument("--workload", default="mcf",
                        help="SPEC program driving the engines (default mcf)")
    parser.add_argument("--accesses", type=int, default=100_000,
                        help="trace length per timing (default 100k)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timings per engine; best is compared")
    parser.add_argument("--cache-mb", type=int, default=1024)
    parser.add_argument("--scale", type=int, default=64)
    parser.add_argument("--min-ratio", type=float, default=1.5,
                        help="required batched/scalar throughput ratio "
                             "(default 1.5)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI size: {SMOKE_ACCESSES} accesses, repeat "
                             "bumped to 5 to tame timing noise")
    parser.add_argument("--json", action="store_true",
                        help="emit the comparison as JSON on stdout")
    return parser.parse_args(argv)


def _best_of(simulator: Simulator, design: str, bindings, repeat: int,
             engine: str):
    """(best wall seconds, ipc) over ``repeat`` runs under ``engine``."""
    best = float("inf")
    ipc = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = simulator.run(design, bindings, engine=engine)
        best = min(best, time.perf_counter() - start)
        ipc = result.ipc_sum
    return best, ipc


def run_guard(args: argparse.Namespace) -> list:
    accesses = SMOKE_ACCESSES if args.smoke else args.accesses
    repeat = max(args.repeat, 5) if args.smoke else args.repeat
    generator = TraceGenerator(spec_profile(args.workload),
                               capacity_scale=args.scale)
    trace = generator.generate(accesses)
    config = default_system(cache_megabytes=args.cache_mb, num_cores=1,
                            capacity_scale=args.scale)
    simulator = Simulator(config)
    bindings = [BoundTrace(0, 0, trace)]

    rows = []
    for design in args.designs:
        scalar_s, scalar_ipc = _best_of(simulator, design, bindings,
                                        repeat, "scalar")
        batched_s, batched_ipc = _best_of(simulator, design, bindings,
                                          repeat, "batched")
        ratio = (scalar_s / batched_s) if batched_s > 0 else 0.0
        identical = scalar_ipc == batched_ipc
        status = "ok" if (ratio >= args.min_ratio and identical) else "FAIL"
        rows.append({
            "design": design,
            "accesses": accesses,
            "scalar_accesses_per_second":
                accesses / scalar_s if scalar_s > 0 else 0.0,
            "batched_accesses_per_second":
                accesses / batched_s if batched_s > 0 else 0.0,
            "ratio": ratio,
            "ipc_identical": identical,
            "status": status,
        })
        note = "" if identical else "  IPC DIVERGED"
        print(f"  [{status:4s}] {design:8s} batched/scalar "
              f"{ratio:5.2f}x (floor {args.min_ratio:g}x){note}",
              file=sys.stderr)
    return rows


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.min_ratio <= 0:
        raise SystemExit("--min-ratio must be positive")
    print(f"engine guard (floor {args.min_ratio:g}x, "
          f"workload {args.workload})", file=sys.stderr)
    rows = run_guard(args)
    failures = [r for r in rows if r["status"] == "FAIL"]
    if args.json:
        print(json.dumps(rows, indent=2))
    verdict = "PASS" if not failures else f"FAIL ({len(failures)} designs)"
    print(f"engine guard: {verdict}")
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
