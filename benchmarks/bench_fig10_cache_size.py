"""Figure 10: IPC sensitivity to DRAM cache size (256 MB/512 MB/1 GB),
normalised to bank-interleaving.

Paper: at 256 MB both caches *lose* to BI by ~30 % (thrashing page
migrations); from 512 MB up the caches win, with tagless ahead at the
large end.
"""

from conftest import bench_accesses, bench_harness

from repro.analysis.experiments import run_cache_size_sweep


def run_figure10():
    return run_cache_size_sweep(accesses=bench_accesses(50_000),
                                harness=bench_harness())


def test_fig10_cache_size(benchmark, record_table):
    result = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    record_table("fig10", result.table())

    # The crossover: both designs below BI at 256 MB, above it at 1 GB.
    for design in ("sram", "tagless"):
        assert result.geomean_ipc(256, design) < 1.0
        assert result.geomean_ipc(1024, design) > 1.0
    # Monotone improvement with capacity for the tagless cache.  (The
    # SRAM-tag series may dip slightly at the top because the BI
    # normaliser also improves with a larger in-package region.)
    tagless_series = [result.geomean_ipc(size, "tagless")
                      for size in result.sizes_mb]
    assert tagless_series == sorted(tagless_series)
    assert result.geomean_ipc(512, "sram") > result.geomean_ipc(256, "sram")
    # Tagless benefits most from the large cache (paper: consistently
    # outperforms SRAM-tag for large sizes).
    assert result.geomean_ipc(1024, "tagless") >= result.geomean_ipc(
        1024, "sram") * 0.99
