"""Table 6: SRAM tag-array size and access latency vs DRAM cache size.

Regenerates the table from the model in
:func:`repro.common.config.tag_array_parameters` and, as a live check,
probes an actual :class:`repro.sram.tag_array.SRAMTagArray` per size.
"""

from conftest import bench_accesses  # noqa: F401

from repro.analysis.report import format_table
from repro.common.addressing import BYTES_PER_MB, PAGE_BYTES
from repro.common.config import SRAMTagConfig, tag_array_parameters
from repro.sram.tag_array import SRAMTagArray


def build_table6():
    rows = []
    arrays = {}
    for cache_mb in (128, 256, 512, 1024):
        cache_bytes = cache_mb * BYTES_PER_MB
        tag_mb, cycles = tag_array_parameters(cache_bytes)
        config = SRAMTagConfig(cache_bytes=cache_bytes)
        # A scaled-down live array with the same cost model.
        array = SRAMTagArray(
            capacity_pages=cache_bytes // PAGE_BYTES // 64, config=config
        )
        arrays[cache_mb] = array
        rows.append(
            [f"{cache_mb}MB", f"{tag_mb:.1f}MB", cycles,
             f"{config.probe_nj:.2f}nJ", f"{config.leakage_watts:.2f}W"]
        )
    table = format_table(
        "Table 6: SRAM tag parameters vs DRAM cache size",
        ["cache size", "tag size", "latency (cycles)", "probe energy",
         "leakage"],
        rows,
    )
    return table, arrays


def test_table6_tag_array(benchmark, record_table):
    table, arrays = benchmark.pedantic(build_table6, rounds=1, iterations=1)
    record_table("table6", table)
    # The paper's exact values.
    assert arrays[128].access_cycles == 5
    assert arrays[256].access_cycles == 6
    assert arrays[512].access_cycles == 9
    assert arrays[1024].access_cycles == 11
    assert arrays[1024].config.tag_megabytes == 4.0
